let pattern_radius = 120.0
let window_margin = 10

(* Greedy clustering: repeatedly seed a cluster with the left-most
   unassigned mark and absorb its (at most two) nearest neighbours within
   the rigidity radius. Sorting makes the result deterministic. *)
let cluster marks =
  let sorted =
    List.sort
      (fun (a : Mark.t) (b : Mark.t) -> compare (a.Mark.x, a.Mark.y) (b.Mark.x, b.Mark.y))
      marks
  in
  let rec go remaining clusters =
    match remaining with
    | [] -> List.rev clusters
    | seed :: rest ->
        let near, far =
          List.partition (fun m -> Mark.distance seed m <= pattern_radius) rest
        in
        let near_sorted =
          List.sort (fun a b -> compare (Mark.distance seed a) (Mark.distance seed b)) near
        in
        let taken, left =
          match near_sorted with
          | a :: b :: rest -> ([ a; b ], rest)
          | l -> (l, [])
        in
        go (left @ far) ((seed :: taken) :: clusters)
  in
  go sorted []

let update (state : Track_state.t) marks =
  let groups = cluster marks in
  let full = List.filter (fun g -> List.length g = 3) groups in
  let frame = state.Track_state.frame + 1 in
  if full = [] then { Track_state.mode = Track_state.Reinit; tracks = []; frame }
  else begin
    let mk_track group =
      let candidate = { Track_state.marks = group; vx = 0.0; vy = 0.0 } in
      let cx, cy = Track_state.centroid candidate in
      (* Associate with the nearest previous track to estimate velocity. *)
      let nearest =
        List.fold_left
          (fun best prev ->
            let px, py = Track_state.centroid prev in
            let d = sqrt (((cx -. px) ** 2.0) +. ((cy -. py) ** 2.0)) in
            match best with
            | Some (_, bd) when bd <= d -> best
            | _ -> Some (prev, d))
          None state.Track_state.tracks
      in
      match nearest with
      | Some (prev, d) when d <= 2.0 *. pattern_radius ->
          let px, py = Track_state.centroid prev in
          { Track_state.marks = group; vx = cx -. px; vy = cy -. py }
      | _ -> candidate
    in
    {
      Track_state.mode = Track_state.Tracking;
      tracks = List.map mk_track full;
      frame;
    }
  end

let windows_for ~nproc ~width ~height (state : Track_state.t) =
  match state.Track_state.mode with
  | Track_state.Reinit -> Vision.Window.tile ~width ~height nproc
  | Track_state.Tracking ->
      let wins =
        List.concat_map
          (fun (tr : Track_state.track) ->
            List.map
              (fun (m : Mark.t) ->
                (* Predict the mark position one frame ahead and size the
                   window from the mark's englobing frame. *)
                let cx = m.Mark.x +. tr.Track_state.vx
                and cy = m.Mark.y +. tr.Track_state.vy in
                let half_w = (Mark.width m / 2) + window_margin
                and half_h = (Mark.height m / 2) + window_margin in
                Vision.Window.make
                  ~x:(int_of_float cx - half_w)
                  ~y:(int_of_float cy - half_h)
                  ~w:(2 * half_w) ~h:(2 * half_h))
              tr.Track_state.marks)
          state.Track_state.tracks
      in
      let clipped = List.filter_map (Vision.Window.clip ~width ~height) wins in
      if clipped = [] then Vision.Window.tile ~width ~height nproc else clipped
