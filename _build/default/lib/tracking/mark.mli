(** Detected visual marks.

    A mark is a connected group of bright pixels characterised by its centre
    of gravity and englobing frame (paper §4). Marks cross process
    boundaries, so they have a {!Skel.Value.t} encoding. *)

type t = {
  x : float;  (** centre of gravity, absolute image coordinates *)
  y : float;
  area : int;
  min_x : int;
  min_y : int;
  max_x : int;
  max_y : int;
}

val of_region : dx:int -> dy:int -> Vision.Ccl.region -> t
(** Converts a region detected inside a window whose origin is [(dx, dy)]
    back to absolute coordinates. *)

val distance : t -> t -> float
(** Euclidean distance between centres. *)

val width : t -> int
val height : t -> int

val to_value : t -> Skel.Value.t
val of_value : Skel.Value.t -> t
(** Raises [Skel.Value.Type_error] on malformed encodings. *)

val list_to_value : t list -> Skel.Value.t
val list_of_value : Skel.Value.t -> t list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
