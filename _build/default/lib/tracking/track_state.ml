module V = Skel.Value

type track = { marks : Mark.t list; vx : float; vy : float }
type mode = Tracking | Reinit
type t = { mode : mode; tracks : track list; frame : int }

let initial = { mode = Reinit; tracks = []; frame = 0 }

let centroid track =
  let n = float_of_int (max 1 (List.length track.marks)) in
  let sx = List.fold_left (fun acc (m : Mark.t) -> acc +. m.Mark.x) 0.0 track.marks in
  let sy = List.fold_left (fun acc (m : Mark.t) -> acc +. m.Mark.y) 0.0 track.marks in
  (sx /. n, sy /. n)

let locked track = List.length track.marks = 3

let track_to_value tr =
  V.Record
    [
      ("marks", Mark.list_to_value tr.marks);
      ("vx", V.Float tr.vx);
      ("vy", V.Float tr.vy);
    ]

let track_of_value v =
  {
    marks = Mark.list_of_value (V.field "marks" v);
    vx = V.to_float (V.field "vx" v);
    vy = V.to_float (V.field "vy" v);
  }

let to_value st =
  V.Record
    [
      ("mode", V.Str (match st.mode with Tracking -> "tracking" | Reinit -> "reinit"));
      ("tracks", V.List (List.map track_to_value st.tracks));
      ("frame", V.Int st.frame);
    ]

let of_value v =
  let mode =
    match V.to_str (V.field "mode" v) with
    | "tracking" -> Tracking
    | "reinit" -> Reinit
    | s -> raise (V.Type_error (Printf.sprintf "unknown tracker mode %S" s))
  in
  {
    mode;
    tracks = List.map track_of_value (V.to_list (V.field "tracks" v));
    frame = V.to_int (V.field "frame" v);
  }

let equal a b = V.equal (to_value a) (to_value b)

let pp ppf st =
  Format.fprintf ppf "state(frame=%d, mode=%s, %d tracks)" st.frame
    (match st.mode with Tracking -> "tracking" | Reinit -> "reinit")
    (List.length st.tracks)
