module V = Skel.Value

type t = {
  x : float;
  y : float;
  area : int;
  min_x : int;
  min_y : int;
  max_x : int;
  max_y : int;
}

let of_region ~dx ~dy (r : Vision.Ccl.region) =
  {
    x = r.Vision.Ccl.cx +. float_of_int dx;
    y = r.Vision.Ccl.cy +. float_of_int dy;
    area = r.Vision.Ccl.area;
    min_x = r.Vision.Ccl.min_x + dx;
    min_y = r.Vision.Ccl.min_y + dy;
    max_x = r.Vision.Ccl.max_x + dx;
    max_y = r.Vision.Ccl.max_y + dy;
  }

let distance a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let width m = m.max_x - m.min_x + 1
let height m = m.max_y - m.min_y + 1

let to_value m =
  V.Record
    [
      ("x", V.Float m.x);
      ("y", V.Float m.y);
      ("area", V.Int m.area);
      ("min_x", V.Int m.min_x);
      ("min_y", V.Int m.min_y);
      ("max_x", V.Int m.max_x);
      ("max_y", V.Int m.max_y);
    ]

let of_value v =
  {
    x = V.to_float (V.field "x" v);
    y = V.to_float (V.field "y" v);
    area = V.to_int (V.field "area" v);
    min_x = V.to_int (V.field "min_x" v);
    min_y = V.to_int (V.field "min_y" v);
    max_x = V.to_int (V.field "max_x" v);
    max_y = V.to_int (V.field "max_y" v);
  }

let list_to_value marks = V.List (List.map to_value marks)
let list_of_value v = List.map of_value (V.to_list v)

let equal a b =
  a.x = b.x && a.y = b.y && a.area = b.area && a.min_x = b.min_x && a.min_y = b.min_y
  && a.max_x = b.max_x && a.max_y = b.max_y

let pp ppf m =
  Format.fprintf ppf "mark(%.1f, %.1f, area=%d, frame=[%d..%d]x[%d..%d])" m.x m.y
    m.area m.min_x m.max_x m.min_y m.max_y
