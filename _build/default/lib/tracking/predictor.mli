(** Predict-then-verify tracking (paper §4, second part).

    The englobing frames of marks detected at iteration [i] predict the
    windows of interest for iteration [i+1]. The paper uses a 3D model of
    each vehicle trajectory with rigidity criteria; our substitution is an
    image-plane rigid-translation model with constant-velocity prediction
    and a proximity rigidity check (three marks of a vehicle stay within a
    bounded pattern radius), which exercises the same control flow:
    successful prediction keeps the [df] workload small and uneven, while a
    failed prediction (fewer than three marks) falls back to dividing the
    whole image into [n] windows. *)

val pattern_radius : float
(** Maximum distance between a vehicle's marks (rigidity criterion). *)

val cluster : Mark.t list -> Mark.t list list
(** Greedy spatial clustering of detected marks into vehicle candidates of
    at most three marks each; deterministic. *)

val update : Track_state.t -> Mark.t list -> Track_state.t
(** [update state marks] associates mark clusters with previous tracks,
    estimates velocities, and produces the next state: [Tracking] mode with
    predicted tracks when at least one full (3-mark) vehicle was seen,
    [Reinit] otherwise. The frame counter advances. *)

val windows_for :
  nproc:int -> width:int -> height:int -> Track_state.t -> Vision.Window.t list
(** Windows of interest for the current state: per-mark prediction windows
    in [Tracking] mode (3 per vehicle, sized from each mark's frame), or
    [nproc] full-image tiles in [Reinit] mode. All windows are clipped. *)

val window_margin : int
