(** The skeletal intermediate representation.

    A skeletal program is a composition of skeleton instances whose
    parameters are *named* sequential functions (resolved against a
    {!Funtable.t}). Both front-ends produce this IR: the embedded OCaml
    combinator API builds it directly, and the ML front-end
    ({!Minicaml.Extract}) recovers it from a typed abstract syntax tree.
    Downstream, {!Procnet.Expand} turns it into a process network.

    SKiPPER's skeletons compose but do not nest (paper §5: "their skeletons
    can be freely nested, ours not"): compute parameters of [scm]/[df]/[tf]
    are sequential functions, and only [itermem]'s loop body is a (skeleton)
    pipeline. [validate] enforces this. *)

type t =
  | Seq of string
      (** apply a registered sequential function to the incoming value *)
  | Pipe of t list  (** left-to-right composition; [Pipe []] is the identity *)
  | Scm of { nparts : int; split : string; compute : string; merge : string }
      (** split into [nparts] sub-domains, compute each, merge the list of
          results *)
  | Df of { nworkers : int; comp : string; acc : string; init : Value.t }
      (** data farm over an incoming [List]: [fold acc init (map comp)] *)
  | Tf of { nworkers : int; work : string; acc : string; init : Value.t }
      (** task farm: [work] returns [Tuple [List new_packets; result]] *)
  | Itermem of { input : string; loop : t; output : string; init : Value.t }
      (** stream loop with memory: per frame [i], feeds
          [Tuple [state; input i]] to [loop], expects [Tuple [state'; y]],
          passes [y] to [output] *)

type program = {
  name : string;
  body : t;
  frames : int;
      (** number of stream iterations to run when the body is an [Itermem]
          (the paper's version loops forever on live video) *)
}

val program : ?frames:int -> string -> t -> program
(** Default [frames] = 1. *)

val validate : Funtable.t -> program -> (unit, string) result
(** Checks that every referenced function is registered, worker/part counts
    are positive, skeletons are not nested except under [Itermem]'s loop, and
    [Itermem] appears only at top level. *)

val skeleton_instances : t -> string list
(** Names of skeleton constructors used, in traversal order, e.g.
    [["itermem"; "df"]] for the vehicle tracker. *)

val functions_used : t -> string list
(** All referenced sequential-function names, deduplicated, in order of first
    use. *)

val pp : Format.formatter -> t -> unit
val pp_program : Format.formatter -> program -> unit
