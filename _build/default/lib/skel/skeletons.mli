(** Declarative (sequential, executable) definitions of the four SKiPPER
    skeletons, exactly as published in the paper (§2, Fig. 4).

    These higher-order functions give skeleton-based programs their
    architecture-independent semantics, and implement the "sequential
    emulation" branch of the toolchain (paper Fig. 2): a skeletal program run
    through these combinators on a workstation must produce the same result
    as the parallel executive, provided the accumulation functions passed to
    [df]/[tf] are commutative and associative (the equivalence obligation the
    paper places on the implementor). *)

val scm : int -> (int -> 'a -> 'b list) -> ('b -> 'c) -> ('c list -> 'd) -> 'a -> 'd
(** [scm n split comp merge x = merge (List.map comp (split n x))].
    Split, Compute and Merge: regular geometric data parallelism. [split n x]
    must return exactly [n] sub-domains for the operational version to use
    [n] compute processes; the declarative version accepts any length. *)

val df : int -> ('a -> 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c
(** [df n comp acc z xs = List.fold_left acc z (List.map comp xs)].
    Data Farming: irregular data parallelism over a list of items, with
    dynamic load balancing in the operational version. The first argument
    (number of workers) only affects the operational definition. *)

val tf : int -> ('a -> 'a list * 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c
(** Task Farming: generalisation of [df] where each worker may recursively
    generate new packets (divide and conquer). Declaratively, packets are
    processed depth-first:
    [tf n work acc z (x :: rest)] runs [work x = (subs, y)], then recurses on
    [subs @ rest] with accumulator [acc z y]. *)

val itermem : ('a -> 'b) -> ('c * 'b -> 'c * 'd) -> ('d -> unit) -> 'c -> 'a -> unit
(** The paper's Fig. 4 definition, verbatim:
    [itermem inp loop out z x] runs
    [let rec f z = let z', y = loop (z, inp x) in out y; f z' in f z].
    Never returns; use [itermem_n] for bounded runs. *)

val itermem_n :
  int -> ('a -> 'b) -> ('c * 'b -> 'c * 'd) -> ('d -> unit) -> 'c -> 'a -> 'c
(** [itermem_n k inp loop out z x] is [itermem] limited to [k] iterations;
    returns the final memory value. Raises [Invalid_argument] when [k < 0]. *)

val itermem_stream :
  int -> (int -> 'b) -> ('c * 'b -> 'c * 'd) -> 'c -> 'c * 'd list
(** Stream-of-frames variant used by the applications: the input function
    receives the frame index (a camera delivering frame [i]), and outputs are
    collected. [itermem_stream k inp loop z] returns the final memory and the
    [k] outputs in order. *)
