(** Universal runtime values.

    Values flow across every layer of the environment: they are produced by
    sequential emulation, carried as messages by the machine simulator, and
    returned by parallel runs, so that the two execution paths of the paper's
    Fig. 2 can be compared for equality. The size model ([byte_size]) drives
    communication costs in the machine model. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Tuple of t list  (** at least 2 components *)
  | List of t list
  | Image of Vision.Image.t
  | Win of Vision.Window.t
  | Record of (string * t) list  (** field order is significant for equality *)

val unit : t
val int : int -> t
val float : float -> t
val bool : bool -> t
val str : string -> t
val pair : t -> t -> t
val list : t list -> t
val image : Vision.Image.t -> t
val window : Vision.Window.t -> t
val record : (string * t) list -> t

(** Checked projections; each raises [Type_error] with a descriptive message
    when the value has the wrong shape. *)

exception Type_error of string

val to_int : t -> int
val to_float : t -> float
val to_bool : t -> bool
val to_str : t -> string
val to_list : t -> t list
val to_pair : t -> t * t
val to_tuple : t -> t list
val to_image : t -> Vision.Image.t
val to_window : t -> Vision.Window.t
val field : string -> t -> t
(** [field name v] projects a record field. *)

val byte_size : t -> int
(** Serialised size estimate used for link-transfer costs: ints/floats are 4/8
    bytes, images [w*h + 8], containers add a small header. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
