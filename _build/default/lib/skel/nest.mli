(** Skeleton nesting (an extension beyond the paper).

    The paper notes (§5) that OCamlP3L's skeletons "can be freely nested,
    ours not". SKiPPER-0's restriction is architectural: skeleton parameters
    are sequential functions, so a skeleton cannot appear inside another's
    compute slot. This module lifts the restriction the way SKiPPER-II later
    did for its first release: a nested skeletal stage is packaged as an
    ordinary sequential function — it runs *serialised* on whichever worker
    receives the packet — with a faithful cost model derived by instrumented
    emulation ({!Sem.eval_stage_cost}). The outer skeleton still
    parallelises; the inner one contributes its full sequential cost.

    This preserves both semantics (the declarative meaning of nesting is
    composition) and the emulation/executive equivalence, while documenting
    the performance model honestly: nested parallelism is not extracted. *)

val as_function : ?name:string -> Funtable.t -> Ir.t -> string
(** [as_function table stage] registers a fresh unary function running
    [stage] sequentially; its cost model charges the cycles the stage's
    sequential functions consume on the actual argument. Returns the
    registered name. [stage] must not contain [Itermem] (raises
    [Invalid_argument]). *)

val df :
  table:Funtable.t ->
  nworkers:int ->
  comp:Ir.t ->
  acc:string ->
  init:Value.t ->
  Ir.t
(** A data farm whose per-item computation is itself a skeletal stage. *)

val scm :
  table:Funtable.t ->
  nparts:int ->
  split:string ->
  compute:Ir.t ->
  merge:string ->
  Ir.t
(** An scm whose per-part computation is itself a skeletal stage. *)
