type t =
  | Seq of string
  | Pipe of t list
  | Scm of { nparts : int; split : string; compute : string; merge : string }
  | Df of { nworkers : int; comp : string; acc : string; init : Value.t }
  | Tf of { nworkers : int; work : string; acc : string; init : Value.t }
  | Itermem of { input : string; loop : t; output : string; init : Value.t }

type program = { name : string; body : t; frames : int }

let program ?(frames = 1) name body = { name; body; frames }

let rec skeleton_instances = function
  | Seq _ -> []
  | Pipe stages -> List.concat_map skeleton_instances stages
  | Scm _ -> [ "scm" ]
  | Df _ -> [ "df" ]
  | Tf _ -> [ "tf" ]
  | Itermem { loop; _ } -> "itermem" :: skeleton_instances loop

let functions_used stage =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      out := name :: !out
    end
  in
  let rec go = function
    | Seq f -> add f
    | Pipe stages -> List.iter go stages
    | Scm { split; compute; merge; _ } ->
        add split;
        add compute;
        add merge
    | Df { comp; acc; _ } ->
        add comp;
        add acc
    | Tf { work; acc; _ } ->
        add work;
        add acc
    | Itermem { input; loop; output; _ } ->
        add input;
        go loop;
        add output
  in
  go stage;
  List.rev !out

let validate table prog =
  let ( let* ) = Result.bind in
  let check_fn name =
    if Funtable.mem table name then Ok ()
    else Error (Printf.sprintf "unknown sequential function %S" name)
  in
  let check_pos what n =
    if n > 0 then Ok () else Error (Printf.sprintf "%s must be positive, got %d" what n)
  in
  let rec check ~depth ~top = function
    | Seq f -> check_fn f
    | Pipe stages ->
        List.fold_left
          (fun acc stage ->
            let* () = acc in
            check ~depth ~top:false stage)
          (Ok ()) stages
    | Scm { nparts; split; compute; merge } ->
        let* () = check_pos "scm nparts" nparts in
        let* () = check_fn split in
        let* () = check_fn compute in
        check_fn merge
    | Df { nworkers; comp; acc; _ } ->
        let* () = check_pos "df nworkers" nworkers in
        let* () = check_fn comp in
        check_fn acc
    | Tf { nworkers; work; acc; _ } ->
        let* () = check_pos "tf nworkers" nworkers in
        let* () = check_fn work in
        check_fn acc
    | Itermem { input; loop; output; _ } ->
        if not top then Error "itermem is only allowed at the top level"
        else
          let* () = check_fn input in
          let* () = check_fn output in
          check ~depth:(depth + 1) ~top:false loop
  in
  let* () = check ~depth:0 ~top:true prog.body in
  if prog.frames <= 0 then Error "program frame count must be positive" else Ok ()

let rec pp ppf = function
  | Seq f -> Format.fprintf ppf "seq %s" f
  | Pipe stages ->
      Format.fprintf ppf "(@[%a@])"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ |> ")
           pp)
        stages
  | Scm { nparts; split; compute; merge } ->
      Format.fprintf ppf "scm %d %s %s %s" nparts split compute merge
  | Df { nworkers; comp; acc; init } ->
      Format.fprintf ppf "df %d %s %s %a" nworkers comp acc Value.pp init
  | Tf { nworkers; work; acc; init } ->
      Format.fprintf ppf "tf %d %s %s %a" nworkers work acc Value.pp init
  | Itermem { input; loop; output; init } ->
      Format.fprintf ppf "@[<2>itermem %s@ (%a)@ %s@ %a@]" input pp loop output
        Value.pp init

let pp_program ppf prog =
  Format.fprintf ppf "@[<v2>program %s (frames=%d):@ %a@]" prog.name prog.frames pp
    prog.body
