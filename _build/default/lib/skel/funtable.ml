type entry = {
  name : string;
  arity : int;
  apply : Value.t -> Value.t;
  cost : Value.t -> float;
}

type t = (string, entry) Hashtbl.t

let create () = Hashtbl.create 32
let default_cost _ = 1000.0

let register t ?(arity = 1) ?(cost = default_cost) name apply =
  if Hashtbl.mem t name then
    invalid_arg (Printf.sprintf "Funtable.register: %S already registered" name);
  Hashtbl.replace t name { name; arity; apply; cost }

let find_opt t name = Hashtbl.find_opt t name

let find t name =
  match find_opt t name with
  | Some e -> e
  | None -> failwith (Printf.sprintf "Funtable: unknown function %S" name)

let mem t name = Hashtbl.mem t name
let names t = Hashtbl.fold (fun name _ acc -> name :: acc) t [] |> List.sort compare
let apply t name v = (find t name).apply v
let cost t name v = (find t name).cost v

let of_list entries =
  let t = create () in
  List.iter (fun (name, arity, apply, cost) -> register t ~arity ~cost name apply) entries;
  t
