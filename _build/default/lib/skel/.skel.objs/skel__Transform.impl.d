lib/skel/transform.ml: Funtable Ir List Printf Value
