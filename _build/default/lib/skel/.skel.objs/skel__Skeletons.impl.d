lib/skel/skeletons.ml: List
