lib/skel/value.mli: Format Vision
