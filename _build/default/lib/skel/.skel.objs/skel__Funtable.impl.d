lib/skel/funtable.ml: Hashtbl List Printf Value
