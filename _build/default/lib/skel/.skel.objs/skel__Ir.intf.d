lib/skel/ir.mli: Format Funtable Value
