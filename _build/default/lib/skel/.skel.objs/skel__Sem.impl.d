lib/skel/sem.ml: Funtable Ir List Printf Value
