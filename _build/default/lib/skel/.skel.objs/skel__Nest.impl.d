lib/skel/nest.ml: Funtable Ir List Printf Sem
