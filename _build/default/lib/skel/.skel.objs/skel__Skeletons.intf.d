lib/skel/skeletons.mli:
