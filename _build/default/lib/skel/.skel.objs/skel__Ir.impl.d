lib/skel/ir.ml: Format Funtable Hashtbl List Printf Result Value
