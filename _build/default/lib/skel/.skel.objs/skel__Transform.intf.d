lib/skel/transform.mli: Funtable Ir
