lib/skel/funtable.mli: Value
