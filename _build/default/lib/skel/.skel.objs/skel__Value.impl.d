lib/skel/value.ml: Bool Float Format Int List Printf Stdlib String Vision
