lib/skel/nest.mli: Funtable Ir Value
