lib/skel/sem.mli: Funtable Ir Value
