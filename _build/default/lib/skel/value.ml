type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Tuple of t list
  | List of t list
  | Image of Vision.Image.t
  | Win of Vision.Window.t
  | Record of (string * t) list

exception Type_error of string

let unit = Unit
let int n = Int n
let float f = Float f
let bool b = Bool b
let str s = Str s
let pair a b = Tuple [ a; b ]
let list vs = List vs
let image img = Image img
let window w = Win w
let record fields = Record fields

let kind = function
  | Unit -> "unit"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"
  | Tuple vs -> Printf.sprintf "tuple/%d" (List.length vs)
  | List _ -> "list"
  | Image _ -> "image"
  | Win _ -> "window"
  | Record _ -> "record"

let type_error expected v =
  raise (Type_error (Printf.sprintf "expected %s, got %s" expected (kind v)))

let to_int = function Int n -> n | v -> type_error "int" v
let to_float = function Float f -> f | Int n -> float_of_int n | v -> type_error "float" v
let to_bool = function Bool b -> b | v -> type_error "bool" v
let to_str = function Str s -> s | v -> type_error "string" v
let to_list = function List vs -> vs | v -> type_error "list" v
let to_pair = function Tuple [ a; b ] -> (a, b) | v -> type_error "pair" v
let to_tuple = function Tuple vs -> vs | v -> type_error "tuple" v
let to_image = function Image img -> img | v -> type_error "image" v
let to_window = function Win w -> w | v -> type_error "window" v

let field name = function
  | Record fields -> (
      match List.assoc_opt name fields with
      | Some x -> x
      | None -> raise (Type_error (Printf.sprintf "record has no field %S" name)))
  | v -> type_error "record" v

let rec byte_size = function
  | Unit | Bool _ -> 1
  | Int _ -> 4
  | Float _ -> 8
  | Str s -> 4 + String.length s
  | Tuple vs -> List.fold_left (fun acc v -> acc + byte_size v) 2 vs
  | List vs -> List.fold_left (fun acc v -> acc + byte_size v) 4 vs
  | Image img -> 8 + Vision.Image.size img
  | Win _ -> 16
  | Record fields -> List.fold_left (fun acc (_, v) -> acc + byte_size v) 4 fields

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | Tuple xs, Tuple ys | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Image x, Image y -> Vision.Image.equal x y
  | Win x, Win y -> Vision.Window.equal x y
  | Record xs, Record ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (nx, vx) (ny, vy) -> String.equal nx ny && equal vx vy)
           xs ys
  | ( (Unit | Bool _ | Int _ | Float _ | Str _ | Tuple _ | List _ | Image _ | Win _
      | Record _),
      _ ) ->
      false

let rank = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4
  | Tuple _ -> 5
  | List _ -> 6
  | Image _ -> 7
  | Win _ -> 8
  | Record _ -> 9

let rec compare a b =
  match (a, b) with
  | Unit, Unit -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Tuple xs, Tuple ys | List xs, List ys -> List.compare compare xs ys
  | Image x, Image y ->
      if Vision.Image.equal x y then 0
      else Stdlib.compare (Vision.Image.width x, Vision.Image.height x)
             (Vision.Image.width y, Vision.Image.height y)
  | Win x, Win y -> Stdlib.compare x y
  | Record xs, Record ys ->
      List.compare (fun (nx, vx) (ny, vy) ->
          match String.compare nx ny with 0 -> compare vx vy | c -> c)
        xs ys
  | a, b -> Int.compare (rank a) (rank b)

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Tuple vs ->
      Format.fprintf ppf "(@[%a@])"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
        vs
  | List vs ->
      Format.fprintf ppf "[@[%a@]]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp)
        vs
  | Image img -> Vision.Image.pp ppf img
  | Win w -> Vision.Window.pp ppf w
  | Record fields ->
      let pp_field ppf (name, v) = Format.fprintf ppf "%s = %a" name pp v in
      Format.fprintf ppf "{@[%a@]}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_field)
        fields

let to_string v = Format.asprintf "%a" pp v
