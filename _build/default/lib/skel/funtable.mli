(** Registry of application-specific sequential functions.

    In the paper these are the C functions a programmer supplies as skeleton
    parameters (e.g. [detect_mark], [accum_marks]); SKiPPER treats them as
    opaque computations with a communication interface. Here each function is
    an OCaml function over {!Value.t} together with a *cost model* — the
    number of processor cycles a call consumes as a function of its argument —
    used by the SynDEx-style scheduler and charged by the machine simulator.

    Multi-argument functions receive a [Value.Tuple]; binary folding functions
    (the [acc] parameter of [df]/[tf]) receive [Tuple [accumulator; item]]. *)

type entry = {
  name : string;
  arity : int;  (** number of source-language arguments; 1 means unary *)
  apply : Value.t -> Value.t;
  cost : Value.t -> float;  (** processor cycles consumed by one call *)
}

type t

val create : unit -> t

val register :
  t -> ?arity:int -> ?cost:(Value.t -> float) -> string -> (Value.t -> Value.t) -> unit
(** [register t name fn] adds an entry. Default arity 1; default cost a small
    constant (1000 cycles). Raises [Invalid_argument] if [name] is already
    registered. *)

val find : t -> string -> entry
(** Raises [Not_found]-carrying [Failure] with the unknown name. *)

val find_opt : t -> string -> entry option
val mem : t -> string -> bool
val names : t -> string list
(** Registered names, sorted. *)

val apply : t -> string -> Value.t -> Value.t
val cost : t -> string -> Value.t -> float

val of_list :
  (string * int * (Value.t -> Value.t) * (Value.t -> float)) list -> t
(** Convenience bulk constructor: [(name, arity, apply, cost)] tuples. *)
