let scm n split comp merge x = merge (List.map comp (split n x))
let df _n comp acc z xs = List.fold_left acc z (List.map comp xs)

let tf _n work acc z xs =
  let rec loop z = function
    | [] -> z
    | x :: rest ->
        let subs, y = work x in
        loop (acc z y) (subs @ rest)
  in
  loop z xs

let itermem inp loop out z x =
  let rec f z =
    let z', y = loop (z, inp x) in
    out y;
    f z'
  in
  f z

let itermem_n k inp loop out z x =
  if k < 0 then invalid_arg "itermem_n: negative iteration count";
  let rec f z i =
    if i >= k then z
    else begin
      let z', y = loop (z, inp x) in
      out y;
      f z' (i + 1)
    end
  in
  f z 0

let itermem_stream k inp loop z =
  let outputs = ref [] in
  let rec f z i =
    if i >= k then z
    else begin
      let z', y = loop (z, inp i) in
      outputs := y :: !outputs;
      f z' (i + 1)
    end
  in
  let final = f z 0 in
  (final, List.rev !outputs)
