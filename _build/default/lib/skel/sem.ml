exception Emulation_error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Emulation_error msg)) fmt

let as_list what = function
  | Value.List vs -> vs
  | v -> error "%s: expected a list, got %s" what (Value.to_string v)

let as_pair what = function
  | Value.Tuple [ a; b ] -> (a, b)
  | v -> error "%s: expected a pair, got %s" what (Value.to_string v)

(* The interpreter is parameterised by the function-application primitive so
   the instrumented (cost-summing) variant shares the control structure. *)
let rec eval_with apply table stage v =
  match stage with
  | Ir.Seq f -> apply table f v
  | Ir.Pipe stages ->
      List.fold_left (fun v stage -> eval_with apply table stage v) v stages
  | Ir.Scm { nparts; split; compute; merge } ->
      let parts =
        as_list ("scm split " ^ split)
          (apply table split (Value.Tuple [ Value.Int nparts; v ]))
      in
      let results = List.map (apply table compute) parts in
      apply table merge (Value.List results)
  | Ir.Df { comp; acc; init; _ } ->
      let xs = as_list "df input" v in
      (* Exactly the paper's declarative definition:
         df n comp acc z xs = fold_left acc z (map comp xs). *)
      List.fold_left
        (fun z x -> apply table acc (Value.Tuple [ z; apply table comp x ]))
        init xs
  | Ir.Tf { work; acc; init; _ } ->
      let rec loop z = function
        | [] -> z
        | x :: rest ->
            let subs, y = as_pair "tf work result" (apply table work x) in
            let subs = as_list "tf new packets" subs in
            loop (apply table acc (Value.Tuple [ z; y ])) (subs @ rest)
      in
      loop init (as_list "tf input" v)
  | Ir.Itermem _ -> error "itermem inside eval_stage: stream loops are driven by run"

let eval_stage table stage v = eval_with Funtable.apply table stage v

let eval_stage_cost table stage v =
  let cycles = ref 0.0 in
  let apply table f v =
    cycles := !cycles +. Funtable.cost table f v;
    Funtable.apply table f v
  in
  let result = eval_with apply table stage v in
  (result, !cycles)

let run_with apply table prog input =
  match prog.Ir.body with
  | Ir.Itermem { input = inp; loop; output; init } ->
      let rec drive state i outputs =
        if i >= prog.Ir.frames then
          Value.Tuple [ state; Value.List (List.rev outputs) ]
        else
          let x = apply table inp (Value.Tuple [ input; Value.Int i ]) in
          let state', y =
            as_pair "itermem loop result"
              (eval_with apply table loop (Value.Tuple [ state; x ]))
          in
          let shown = apply table output y in
          drive state' (i + 1) (shown :: outputs)
      in
      drive init 0 []
  | body -> eval_with apply table body input

let run table prog input = run_with Funtable.apply table prog input

let run_cost table prog input =
  let cycles = ref 0.0 in
  let apply table f v =
    cycles := !cycles +. Funtable.cost table f v;
    Funtable.apply table f v
  in
  let result = run_with apply table prog input in
  (result, !cycles)
