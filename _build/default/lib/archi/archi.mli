(** Target-architecture description.

    Like SynDEx, the target machine is described as a graph: nodes are
    processors, edges are point-to-point communication channels (Transputer
    links). The default constants model the paper's Transvision platform:
    T9000 Transputers at 20 MHz (50 ns cycles) with ~10 MB/s effective link
    bandwidth and ~1 µs message startup. Messages between non-adjacent
    processors are routed store-and-forward along shortest paths, which is
    the role of the paper's [M->W]/[W->M] router processes in Fig. 1. *)

type processor = {
  id : int;
  pname : string;
  cycle_time : float;  (** seconds per cycle; 5e-8 for a 20 MHz T9000 *)
}

type link = {
  src : int;
  dst : int;
  bandwidth : float;  (** bytes per second *)
  startup : float;  (** per-message latency, seconds *)
}

type t

val name : t -> string
val processors : t -> processor array
val nprocs : t -> int
val links : t -> link list
val link_between : t -> int -> int -> link option
val neighbours : t -> int -> int list

(** {1 Topology constructors}

    All constructors accept the same optional cost parameters and build
    bidirectional channels (one link per direction). *)

val ring :
  ?cycle_time:float -> ?bandwidth:float -> ?startup:float -> int -> t
(** [ring n]: processors 0..n-1 connected in a cycle (the Transvision
    configuration used in §4). [ring 1] is a single processor with no links;
    [ring 2] a single bidirectional channel. Raises [Invalid_argument] when
    [n <= 0]. *)

val chain : ?cycle_time:float -> ?bandwidth:float -> ?startup:float -> int -> t
val star : ?cycle_time:float -> ?bandwidth:float -> ?startup:float -> int -> t
(** Processor 0 at the centre. *)

val grid :
  ?cycle_time:float -> ?bandwidth:float -> ?startup:float -> int -> int -> t
(** [grid rows cols]. *)

val fully_connected :
  ?cycle_time:float -> ?bandwidth:float -> ?startup:float -> int -> t

val custom :
  name:string -> processor array -> (int * int * float * float) list -> t
(** [custom ~name procs edges] with [(src, dst, bandwidth, startup)] directed
    edges. Raises [Invalid_argument] on dangling endpoints or duplicates. *)

(** {1 Routing} *)

val route : t -> int -> int -> int list
(** [route t a b] is the shortest processor path from [a] to [b], inclusive
    of both (so [route t a a = [a]]). Ties are broken towards
    lower-numbered intermediate processors, deterministically. Raises
    [Failure] when no path exists. *)

val hops : t -> int -> int -> int
(** Number of links along [route t a b]. *)

val transfer_time : t -> int -> int -> int -> float
(** [transfer_time t a b bytes] is the store-and-forward latency of moving
    [bytes] from [a] to [b] along the route, summing per-hop
    [startup + bytes / bandwidth]. Zero when [a = b]. *)

val pp : Format.formatter -> t -> unit
val to_dot : t -> string
