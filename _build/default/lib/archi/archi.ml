type processor = { id : int; pname : string; cycle_time : float }
type link = { src : int; dst : int; bandwidth : float; startup : float }

type t = {
  arch_name : string;
  procs : processor array;
  link_list : link list;
  link_map : (int * int, link) Hashtbl.t;
  adj : int list array;
  (* routes.(a).(b) is the next hop from a towards b, or -1 when unreachable
     or a = b. Precomputed by BFS from every source. *)
  next_hop : int array array;
}

let name t = t.arch_name
let processors t = t.procs
let nprocs t = Array.length t.procs
let links t = t.link_list
let link_between t a b = Hashtbl.find_opt t.link_map (a, b)
let neighbours t p = t.adj.(p)

(* T9000-era defaults (see DESIGN.md calibration table). *)
let default_cycle_time = 5e-8
let default_bandwidth = 1e7
let default_startup = 1e-6

let compute_next_hops n adj =
  let table = Array.make_matrix n n (-1) in
  for src = 0 to n - 1 do
    (* BFS from src; because neighbour lists are sorted, parent choices are
       deterministic and favour low processor ids. *)
    let parent = Array.make n (-1) in
    let visited = Array.make n false in
    visited.(src) <- true;
    let q = Queue.create () in
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if not visited.(v) then begin
            visited.(v) <- true;
            parent.(v) <- u;
            Queue.add v q
          end)
        adj.(u)
    done;
    for dst = 0 to n - 1 do
      if dst <> src && visited.(dst) then begin
        (* Walk back from dst to find src's first step. *)
        let rec first_step v = if parent.(v) = src then v else first_step parent.(v) in
        table.(src).(dst) <- first_step dst
      end
    done
  done;
  table

let build ~name:arch_name procs edges =
  let n = Array.length procs in
  if n = 0 then invalid_arg "Archi: empty processor set";
  Array.iteri
    (fun i p -> if p.id <> i then invalid_arg "Archi: processor ids must be 0..n-1")
    procs;
  let link_map = Hashtbl.create 16 in
  let adj = Array.make n [] in
  List.iter
    (fun l ->
      if l.src < 0 || l.src >= n || l.dst < 0 || l.dst >= n then
        invalid_arg "Archi: link endpoint out of range";
      if l.src = l.dst then invalid_arg "Archi: self-link";
      if Hashtbl.mem link_map (l.src, l.dst) then
        invalid_arg "Archi: duplicate link";
      Hashtbl.replace link_map (l.src, l.dst) l;
      adj.(l.src) <- l.dst :: adj.(l.src))
    edges;
  Array.iteri (fun i ns -> adj.(i) <- List.sort compare ns) adj;
  { arch_name; procs; link_list = edges; link_map; adj; next_hop = compute_next_hops n adj }

let mk_procs ?(cycle_time = default_cycle_time) n =
  Array.init n (fun i -> { id = i; pname = Printf.sprintf "P%d" i; cycle_time })

let bidir ?(bandwidth = default_bandwidth) ?(startup = default_startup) pairs =
  List.concat_map
    (fun (a, b) ->
      [ { src = a; dst = b; bandwidth; startup }; { src = b; dst = a; bandwidth; startup } ])
    pairs

let ring ?cycle_time ?bandwidth ?startup n =
  if n <= 0 then invalid_arg "Archi.ring: n <= 0";
  let pairs =
    if n = 1 then []
    else if n = 2 then [ (0, 1) ]
    else List.init n (fun i -> (i, (i + 1) mod n))
  in
  build
    ~name:(Printf.sprintf "ring-%d" n)
    (mk_procs ?cycle_time n)
    (bidir ?bandwidth ?startup pairs)

let chain ?cycle_time ?bandwidth ?startup n =
  if n <= 0 then invalid_arg "Archi.chain: n <= 0";
  build
    ~name:(Printf.sprintf "chain-%d" n)
    (mk_procs ?cycle_time n)
    (bidir ?bandwidth ?startup (List.init (n - 1) (fun i -> (i, i + 1))))

let star ?cycle_time ?bandwidth ?startup n =
  if n <= 0 then invalid_arg "Archi.star: n <= 0";
  build
    ~name:(Printf.sprintf "star-%d" n)
    (mk_procs ?cycle_time n)
    (bidir ?bandwidth ?startup (List.init (n - 1) (fun i -> (0, i + 1))))

let grid ?cycle_time ?bandwidth ?startup rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Archi.grid: non-positive dimensions";
  let idx r c = (r * cols) + c in
  let pairs = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then pairs := (idx r c, idx r (c + 1)) :: !pairs;
      if r + 1 < rows then pairs := (idx r c, idx (r + 1) c) :: !pairs
    done
  done;
  build
    ~name:(Printf.sprintf "grid-%dx%d" rows cols)
    (mk_procs ?cycle_time (rows * cols))
    (bidir ?bandwidth ?startup !pairs)

let fully_connected ?cycle_time ?bandwidth ?startup n =
  if n <= 0 then invalid_arg "Archi.fully_connected: n <= 0";
  let pairs = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      pairs := (a, b) :: !pairs
    done
  done;
  build
    ~name:(Printf.sprintf "full-%d" n)
    (mk_procs ?cycle_time n)
    (bidir ?bandwidth ?startup !pairs)

let custom ~name:arch_name procs edges =
  build ~name:arch_name procs
    (List.map (fun (src, dst, bandwidth, startup) -> { src; dst; bandwidth; startup }) edges)

let route t a b =
  let n = nprocs t in
  if a < 0 || a >= n || b < 0 || b >= n then invalid_arg "Archi.route: bad processor id";
  if a = b then [ a ]
  else begin
    let rec walk u acc =
      if u = b then List.rev (b :: acc)
      else
        let next = t.next_hop.(u).(b) in
        if next < 0 then failwith (Printf.sprintf "Archi.route: no path %d -> %d" a b)
        else walk next (u :: acc)
    in
    walk a []
  end

let hops t a b = List.length (route t a b) - 1

let transfer_time t a b bytes =
  if a = b then 0.0
  else
    let path = route t a b in
    let rec pairs = function
      | x :: (y :: _ as rest) -> (x, y) :: pairs rest
      | _ -> []
    in
    List.fold_left
      (fun acc (x, y) ->
        match link_between t x y with
        | Some l -> acc +. l.startup +. (float_of_int bytes /. l.bandwidth)
        | None -> failwith "Archi.transfer_time: route uses missing link")
      0.0 (pairs path)

let pp ppf t =
  Format.fprintf ppf "@[<v2>architecture %s: %d processors, %d links@]" t.arch_name
    (nprocs t) (List.length t.link_list)

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" t.arch_name);
  Array.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "  p%d [label=%S shape=box];\n" p.id p.pname))
    t.procs;
  List.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "  p%d -> p%d;\n" l.src l.dst))
    t.link_list;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
