lib/skipper/pipeline.mli: Archi Executive Format Procnet Skel Syndex
