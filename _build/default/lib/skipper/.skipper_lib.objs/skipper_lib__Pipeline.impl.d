lib/skipper/pipeline.ml: Executive Format List Minicaml Printf Procnet Skel Syndex
