type compiled = {
  name : string;
  table : Skel.Funtable.t;
  program : Skel.Ir.program;
  graph : Procnet.Graph.t;
  input : Skel.Value.t option;
  signatures : (string * string) list;
}

type strategy = Heft | Canonical | Round_robin

exception Compile_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Compile_error m)) fmt

let maybe_optimize optimize table program =
  if optimize then fst (Skel.Transform.normalize table program) else program

let compile_source ?(frames = 1) ?(optimize = false) ~table src =
  let ast =
    try Minicaml.Parser.program src with
    | Minicaml.Parser.Parse_error (msg, loc) ->
        error "parse error: %s (at %s)" msg
          (Format.asprintf "%a" Minicaml.Ast.pp_loc loc)
    | Minicaml.Lexer.Lex_error (msg, loc) ->
        error "lexical error: %s (at %s)" msg
          (Format.asprintf "%a" Minicaml.Ast.pp_loc loc)
  in
  let signatures =
    Minicaml.Types.reset_counter ();
    match Minicaml.Infer.infer_program Minicaml.Infer.initial_env ast with
    | _, schemes ->
        List.map (fun (n, s) -> (n, Minicaml.Types.scheme_to_string s)) schemes
    | exception Minicaml.Infer.Type_error (msg, loc) ->
        error "type error: %s (at %s)" msg
          (Format.asprintf "%a" Minicaml.Ast.pp_loc loc)
  in
  let extraction =
    try Minicaml.Extract.extract ~frames table ast with
    | Minicaml.Extract.Extract_error (msg, loc) ->
        error "skeleton extraction: %s (at %s)" msg
          (Format.asprintf "%a" Minicaml.Ast.pp_loc loc)
  in
  let program = maybe_optimize optimize table extraction.Minicaml.Extract.program in
  let graph =
    try Procnet.Expand.expand table program
    with Procnet.Expand.Expansion_error msg -> error "expansion: %s" msg
  in
  {
    name = program.Skel.Ir.name;
    table;
    program;
    graph;
    input = extraction.Minicaml.Extract.input;
    signatures;
  }

let compile_ir ?(optimize = false) ~table program =
  (match Skel.Ir.validate table program with
  | Ok () -> ()
  | Error msg -> error "invalid program %s: %s" program.Skel.Ir.name msg);
  let program = maybe_optimize optimize table program in
  let graph =
    try Procnet.Expand.expand table program
    with Procnet.Expand.Expansion_error msg -> error "expansion: %s" msg
  in
  { name = program.Skel.Ir.name; table; program; graph; input = None; signatures = [] }

let emulate compiled input = Skel.Sem.run compiled.table compiled.program input

let default_cost _compiled = Syndex.Cost.make ()

let map ?(strategy = Canonical) ?cost compiled arch =
  let cost = match cost with Some c -> c | None -> default_cost compiled in
  match strategy with
  | Heft -> Syndex.Heft.map cost arch compiled.graph
  | Canonical ->
      Syndex.Place.of_placement cost arch compiled.graph
        (Syndex.Place.canonical compiled.graph arch)
  | Round_robin ->
      Syndex.Place.of_placement cost arch compiled.graph
        (Syndex.Place.round_robin compiled.graph arch)

let resolve_input compiled input =
  match (input, compiled.input) with
  | Some v, _ -> v
  | None, Some v -> v
  | None, None ->
      error "program %s needs an explicit input value" compiled.name

let execute ?trace ?input_period ?strategy ?cost ?input compiled arch =
  let schedule = map ?strategy ?cost compiled arch in
  let input = resolve_input compiled input in
  Executive.run ?trace ?input_period ~table:compiled.table ~arch
    ~placement:schedule.Syndex.Schedule.placement ~graph:compiled.graph
    ~frames:compiled.program.Skel.Ir.frames ~input ()

let check_equivalence ?input compiled arch =
  let input = resolve_input compiled input in
  let emulated = emulate compiled input in
  let result = execute ~input compiled arch in
  if Skel.Value.equal emulated result.Executive.value then Ok emulated
  else
    Error
      (Printf.sprintf "emulation and executive disagree:\n  emulated: %s\n  parallel: %s"
         (Skel.Value.to_string emulated)
         (Skel.Value.to_string result.Executive.value))

let macro_code compiled schedule =
  Executive.Macro.emit compiled.graph
    ~placement:schedule.Syndex.Schedule.placement
    ~arch:schedule.Syndex.Schedule.arch

let graph_dot compiled = Procnet.Graph.to_dot compiled.graph

let pp_signatures ppf compiled =
  List.iter
    (fun (name, scheme) -> Format.fprintf ppf "val %s : %s@." name scheme)
    compiled.signatures
