(** The SKiPPER environment, end to end (paper Fig. 2).

    Ties the components together: the custom Caml compiler front-end
    (parsing, polymorphic type-checking, skeleton extraction), skeleton
    expansion into a process network, SynDEx-style mapping onto an
    architecture graph, macro-code emission, and the two execution paths —
    sequential emulation on the "workstation" and the distributed executive
    on the simulated MIMD-DM machine. *)

type compiled = {
  name : string;
  table : Skel.Funtable.t;
  program : Skel.Ir.program;
  graph : Procnet.Graph.t;
  input : Skel.Value.t option;  (** program input when the source fixes it *)
  signatures : (string * string) list;
      (** inferred type schemes of the top-level names (source path only) *)
}

type strategy = Heft | Canonical | Round_robin

exception Compile_error of string
(** Carries a rendered, located error message from any front-end stage. *)

val compile_source :
  ?frames:int -> ?optimize:bool -> table:Skel.Funtable.t -> string -> compiled
(** Parse, type-check (with the skeleton signatures in scope), extract the
    skeletal program, optionally normalise it with the transformational
    rules ({!Skel.Transform}, default off), and expand to a process network.
    Wrapper glue functions are registered into [table]. *)

val compile_ir :
  ?optimize:bool -> table:Skel.Funtable.t -> Skel.Ir.program -> compiled
(** The embedded-API entry: validates and expands a hand-built program. *)

val emulate : compiled -> Skel.Value.t -> Skel.Value.t
(** Sequential emulation via the declarative semantics ({!Skel.Sem}). *)

val default_cost : compiled -> Syndex.Cost.t
(** Static cost model for mapping; uses the generic defaults (the simulator
    charges exact data-dependent costs at run time regardless). *)

val map :
  ?strategy:strategy -> ?cost:Syndex.Cost.t -> compiled -> Archi.t ->
  Syndex.Schedule.t
(** Produce the static schedule/placement (default strategy [Canonical],
    the paper's Fig. 1 layout; [Heft] enables the automatic adequation
    heuristic). *)

val execute :
  ?trace:bool ->
  ?input_period:float ->
  ?strategy:strategy ->
  ?cost:Syndex.Cost.t ->
  ?input:Skel.Value.t ->
  compiled ->
  Archi.t ->
  Executive.result
(** Map then run on the simulated machine. [input] overrides the compiled
    input; raises [Compile_error] when neither is available. *)

val check_equivalence :
  ?input:Skel.Value.t -> compiled -> Archi.t -> (Skel.Value.t, string) result
(** Runs both paths with fresh state and compares results; [Ok v] returns
    the common value. This is the paper's correctness story: the emulated
    specification and the distributed executive must agree. *)

val macro_code : compiled -> Syndex.Schedule.t -> string
val graph_dot : compiled -> string
val pp_signatures : Format.formatter -> compiled -> unit
