(** Literal process network templates from the paper.

    {!Expand} leaves message routing to the machine's link layer; this module
    additionally provides the df template exactly as drawn in the paper's
    Fig. 1 for a ring-connected architecture, with explicit [M->W] and
    [W->M] router processes, for structural study and the E5 experiment. *)

val df_ring : nworkers:int -> comp:string -> acc:string -> init:Skel.Value.t -> Graph.t
(** [df_ring ~nworkers ...] builds the Fig. 1 template for a ring of
    [nworkers + 1] processors: the [Master<acc, z>] process on P0, a
    [Worker<comp>] on each of P1..Pn, and on every intermediate processor
    P1..P(n-1) a pair of [M->W] / [W->M] routers forwarding task packets
    outward and results backward along the ring. Raises [Invalid_argument]
    when [nworkers < 1]. *)

val df_ring_process_count : int -> int
(** Expected number of processes for [n] workers: [1 + n + 2 * (n - 1)]. *)

val df_ring_channel_count : int -> int
(** Expected number of channels for [n] workers. *)

val natural_placement : Graph.t -> int array
(** For a [df_ring] graph, the placement the paper's figure depicts: index =
    node id, value = processor id on the ring. *)
