(** Skeleton expansion: instantiating process network templates.

    Turns a validated skeletal program ({!Skel.Ir.program}) into a process
    graph by splicing one template per skeleton instance (paper Fig. 2,
    "skeleton expansion" box):

    - [Seq f]            — a single [Compute] process;
    - [Pipe]             — templates chained by dataflow edges;
    - [Scm]              — [ScmSplit] fanning out to [nparts] [Compute]
                           processes fanning into [ScmMerge];
    - [Df]               — [DfMaster] with bidirectional ["task"]/["result"]
                           channels to [nworkers] [DfWorker]s (Fig. 1 with
                           routing left to the link layer);
    - [Tf]               — like [Df] plus worker ["packet"] feedback;
    - [Itermem]          — [Input] and [Mem] feeding a [Join], the expanded
                           loop body, then a [Fork] returning the updated
                           state to [Mem] and the frame result to [Output]
                           (Fig. 4). *)

exception Expansion_error of string

val expand : Skel.Funtable.t -> Skel.Ir.program -> Graph.t
(** Raises [Expansion_error] when the program fails {!Skel.Ir.validate} or a
    produced graph fails {!Graph.validate} (the latter indicates a bug in the
    templates and is asserted against in the test suite). *)

val expand_stage : Skel.Ir.t -> Graph.t
(** Expands a bare stage with a synthetic entry/exit, without validating
    function names; useful for structural experiments on templates. *)
