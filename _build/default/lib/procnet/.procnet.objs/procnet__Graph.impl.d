lib/procnet/graph.ml: Array Buffer Format Hashtbl List Printf Skel String
