lib/procnet/expand.ml: Graph List Printf Skel
