lib/procnet/graph.mli: Format Skel
