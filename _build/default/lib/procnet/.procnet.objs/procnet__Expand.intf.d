lib/procnet/expand.mli: Graph Skel
