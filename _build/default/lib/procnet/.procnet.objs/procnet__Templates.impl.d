lib/procnet/templates.ml: Array Graph Printf String
