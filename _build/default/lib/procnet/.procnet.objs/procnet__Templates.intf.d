lib/procnet/templates.mli: Graph Skel
