(** Synthetic scene generation.

    The paper's testbench is a camera in a car filming one to three lead
    vehicles, each carrying three bright visual marks. We have no camera, so
    this module synthesises that scene: vehicles follow smooth trajectories
    in the image plane with an apparent scale that varies with distance, and
    each renders as a dark body with three bright circular marks (two on top,
    one at the back, as in the paper's Fig. 3). Frames are deterministic
    functions of [(params, frame_index)]. *)

type vehicle = {
  cx : float;  (** body centre, x, pixels *)
  cy : float;
  scale : float;  (** apparent size factor; 1.0 ~ 60 px wide body *)
  visible : bool;  (** false while occluded *)
}

type params = {
  width : int;
  height : int;
  nvehicles : int;  (** 1 to 3 *)
  seed : int;
  noise : float;  (** std-dev of additive Gaussian pixel noise, in levels *)
  occlusion_period : int;
      (** if > 0, vehicle 0 disappears for a few frames every that many
          frames, forcing the tracker's reinitialisation path *)
}

val default_params : params
(** 512x512, 2 vehicles, seed 42, mild noise, no occlusions. *)

val vehicles_at : params -> int -> vehicle list
(** [vehicles_at p t] is the ground-truth vehicle state at frame [t]. *)

val mark_centers : vehicle -> (float * float) list
(** The three mark centres for a vehicle (empty when not visible). *)

val mark_radius : vehicle -> int
(** Rendered mark radius in pixels (scales with apparent size). *)

val frame : params -> int -> Image.t
(** [frame p t] renders frame [t]: road background, vehicle bodies, bright
    marks, then additive noise. Mark pixels are >= 220; everything else stays
    below 180, so thresholding at 200 isolates marks. *)

val road_frame : ?curvature:float -> width:int -> height:int -> int -> Image.t
(** Synthetic road view for the road-following application: dark asphalt,
    bright solid side lines and a dashed centre line, curving with
    [curvature] (default 0.0005 per frame phase). *)

val ground_truth_marks : params -> int -> (float * float) list
(** All visible mark centres at a frame, in vehicle order. *)
