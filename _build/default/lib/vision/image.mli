(** Grayscale 8-bit images.

    Images are mutable row-major byte rasters. Coordinates are [(x, y)] with
    [x] the column in [0 .. width - 1] and [y] the row in [0 .. height - 1].
    All accessors raise [Invalid_argument] on out-of-bounds coordinates unless
    documented otherwise. *)

type t = private {
  width : int;
  height : int;
  data : Bytes.t;  (** row-major, [width * height] bytes *)
}

val create : ?init:int -> int -> int -> t
(** [create ?init w h] allocates a [w * h] image filled with [init]
    (default 0). Raises [Invalid_argument] if [w <= 0], [h <= 0] or
    [init] is outside [0, 255]. *)

val width : t -> int
val height : t -> int
val size : t -> int
(** [size img] is [width img * height img]. *)

val get : t -> int -> int -> int
(** [get img x y] is the pixel value at [(x, y)], in [0, 255]. *)

val set : t -> int -> int -> int -> unit
(** [set img x y v] writes [v] (clamped to [0, 255]) at [(x, y)]. *)

val get_opt : t -> int -> int -> int option
(** [get_opt img x y] is [None] when [(x, y)] is out of bounds. *)

val in_bounds : t -> int -> int -> bool

val fill : t -> int -> unit
(** [fill img v] sets every pixel to [v] (clamped). *)

val copy : t -> t

val sub : t -> x:int -> y:int -> w:int -> h:int -> t
(** [sub img ~x ~y ~w ~h] extracts a copy of the rectangle. The rectangle is
    clipped against the image; raises [Invalid_argument] when the clipped
    rectangle is empty. *)

val blit : src:t -> dst:t -> x:int -> y:int -> unit
(** [blit ~src ~dst ~x ~y] pastes [src] into [dst] at [(x, y)], clipping
    against [dst]'s bounds. *)

val map : (int -> int) -> t -> t
(** [map f img] applies [f] to every pixel (result clamped to [0, 255]). *)

val mapi : (int -> int -> int -> int) -> t -> t
(** [mapi f img] applies [f x y v] to every pixel. *)

val iter : (int -> int -> int -> unit) -> t -> unit
(** [iter f img] calls [f x y v] for every pixel in row-major order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
(** [fold f z img] folds over pixel values in row-major order. *)

val row_bands : t -> int -> (int * int) list
(** [row_bands img n] splits the rows into [n] contiguous bands, returned as
    [(first_row, nrows)] pairs; bands differ in height by at most one row.
    Bands beyond [height] rows are dropped, so fewer than [n] pairs may be
    returned for very short images. *)

val extract_band : t -> int * int -> t
(** [extract_band img (y0, nrows)] is the horizontal band starting at row
    [y0]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** [pp] prints dimensions and a short content digest, not the raster. *)

val to_pgm : t -> string
(** Binary PGM (P5) encoding. *)

val of_pgm : string -> (t, string) result
(** Parses binary (P5) or ASCII (P2) PGM, maxval up to 255. *)

val save_pgm : t -> string -> unit
(** [save_pgm img path] writes [to_pgm img] to [path]. *)

val load_pgm : string -> (t, string) result
