type t = { width : int; height : int; data : Bytes.t }

let clamp v = if v < 0 then 0 else if v > 255 then 255 else v

let create ?(init = 0) width height =
  if width <= 0 || height <= 0 then
    invalid_arg "Image.create: non-positive dimensions";
  if init < 0 || init > 255 then invalid_arg "Image.create: init out of range";
  { width; height; data = Bytes.make (width * height) (Char.chr init) }

let width img = img.width
let height img = img.height
let size img = img.width * img.height
let in_bounds img x y = x >= 0 && x < img.width && y >= 0 && y < img.height

let check img x y =
  if not (in_bounds img x y) then
    invalid_arg
      (Printf.sprintf "Image: (%d, %d) out of bounds for %dx%d" x y img.width
         img.height)

let unsafe_get img x y = Char.code (Bytes.unsafe_get img.data ((y * img.width) + x))

let unsafe_set img x y v =
  Bytes.unsafe_set img.data ((y * img.width) + x) (Char.unsafe_chr v)

let get img x y =
  check img x y;
  unsafe_get img x y

let set img x y v =
  check img x y;
  unsafe_set img x y (clamp v)

let get_opt img x y = if in_bounds img x y then Some (unsafe_get img x y) else None
let fill img v = Bytes.fill img.data 0 (Bytes.length img.data) (Char.chr (clamp v))
let copy img = { img with data = Bytes.copy img.data }

let clip_rect img x y w h =
  let x0 = max 0 x and y0 = max 0 y in
  let x1 = min img.width (x + w) and y1 = min img.height (y + h) in
  (x0, y0, x1 - x0, y1 - y0)

let sub img ~x ~y ~w ~h =
  let x0, y0, cw, ch = clip_rect img x y w h in
  if cw <= 0 || ch <= 0 then invalid_arg "Image.sub: empty rectangle";
  let dst = create cw ch in
  for row = 0 to ch - 1 do
    Bytes.blit img.data (((y0 + row) * img.width) + x0) dst.data (row * cw) cw
  done;
  dst

let blit ~src ~dst ~x ~y =
  let x0, y0, cw, ch = clip_rect dst x y src.width src.height in
  let sx = x0 - x and sy = y0 - y in
  for row = 0 to ch - 1 do
    Bytes.blit src.data (((sy + row) * src.width) + sx) dst.data
      (((y0 + row) * dst.width) + x0)
      cw
  done

let map f img =
  let dst = create img.width img.height in
  for i = 0 to Bytes.length img.data - 1 do
    Bytes.unsafe_set dst.data i
      (Char.unsafe_chr (clamp (f (Char.code (Bytes.unsafe_get img.data i)))))
  done;
  dst

let mapi f img =
  let dst = create img.width img.height in
  for y = 0 to img.height - 1 do
    for x = 0 to img.width - 1 do
      unsafe_set dst x y (clamp (f x y (unsafe_get img x y)))
    done
  done;
  dst

let iter f img =
  for y = 0 to img.height - 1 do
    for x = 0 to img.width - 1 do
      f x y (unsafe_get img x y)
    done
  done

let fold f z img =
  let acc = ref z in
  for i = 0 to Bytes.length img.data - 1 do
    acc := f !acc (Char.code (Bytes.unsafe_get img.data i))
  done;
  !acc

let row_bands img n =
  if n <= 0 then invalid_arg "Image.row_bands: n <= 0";
  let h = img.height in
  let base = h / n and extra = h mod n in
  let rec loop i y acc =
    if i >= n || y >= h then List.rev acc
    else
      let rows = base + if i < extra then 1 else 0 in
      if rows = 0 then loop (i + 1) y acc
      else loop (i + 1) (y + rows) ((y, rows) :: acc)
  in
  loop 0 0 []

let extract_band img (y0, nrows) = sub img ~x:0 ~y:y0 ~w:img.width ~h:nrows

let equal a b =
  a.width = b.width && a.height = b.height && Bytes.equal a.data b.data

let digest img =
  (* Cheap FNV-1a over the raster, for display and quick comparisons. *)
  let h = ref 0x811c9dc5 in
  Bytes.iter
    (fun c ->
      h := (!h lxor Char.code c) * 0x01000193 land 0x3fffffff)
    img.data;
  !h

let pp ppf img =
  Format.fprintf ppf "<image %dx%d #%08x>" img.width img.height (digest img)

let to_pgm img =
  let header = Printf.sprintf "P5\n%d %d\n255\n" img.width img.height in
  header ^ Bytes.to_string img.data

let of_pgm s =
  (* Tokenise the header, skipping '#' comments, then read the raster. *)
  let n = String.length s in
  let rec skip_ws i =
    if i >= n then i
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> skip_ws (i + 1)
      | '#' ->
          let rec eol j = if j >= n || s.[j] = '\n' then j else eol (j + 1) in
          skip_ws (eol i)
      | _ -> i
  in
  let token i =
    let i = skip_ws i in
    let rec stop j =
      if j >= n then j
      else match s.[j] with ' ' | '\t' | '\n' | '\r' | '#' -> j | _ -> stop (j + 1)
    in
    let j = stop i in
    if j = i then Error "of_pgm: unexpected end of header"
    else Ok (String.sub s i (j - i), j)
  in
  let ( let* ) = Result.bind in
  let int_token i =
    let* tok, j = token i in
    match int_of_string_opt tok with
    | Some v -> Ok (v, j)
    | None -> Error (Printf.sprintf "of_pgm: expected integer, got %S" tok)
  in
  let* magic, i = token 0 in
  let* w, i = int_token i in
  let* h, i = int_token i in
  let* maxval, i = int_token i in
  if w <= 0 || h <= 0 then Error "of_pgm: bad dimensions"
  else if maxval <= 0 || maxval > 255 then Error "of_pgm: unsupported maxval"
  else
    match magic with
    | "P5" ->
        let start = i + 1 in
        if n - start < w * h then Error "of_pgm: truncated raster"
        else
          let img = create w h in
          Bytes.blit_string s start img.data 0 (w * h);
          Ok img
    | "P2" ->
        let img = create w h in
        let rec read k i =
          if k >= w * h then Ok img
          else
            let* v, i = int_token i in
            Bytes.set img.data k (Char.chr (clamp v));
            read (k + 1) i
        in
        read 0 i
    | m -> Error (Printf.sprintf "of_pgm: unsupported magic %S" m)

let save_pgm img path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_pgm img))

let load_pgm path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> of_pgm s
  | exception Sys_error msg -> Error msg
