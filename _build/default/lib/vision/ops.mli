(** Low-level image-processing operators used by the example applications.

    All operators are pure: they allocate fresh output images. Costs quoted in
    the machine model's cost tables correspond to these implementations. *)

val threshold : int -> Image.t -> Image.t
(** [threshold t img] maps pixels [>= t] to 255 and the rest to 0. *)

val invert : Image.t -> Image.t

val histogram : Image.t -> int array
(** 256-bin grayscale histogram. *)

val otsu_threshold : Image.t -> int
(** Otsu's automatic threshold selection over the histogram. Returns a level
    in [0, 255]; thresholding at that level maximises inter-class variance. *)

val convolve3 : int array -> ?div:int -> Image.t -> Image.t
(** [convolve3 kernel ?div img] convolves with a 3x3 integer kernel given in
    row-major order; each output is divided by [div] (default 1) and clamped.
    Border pixels replicate the nearest valid neighbourhood.
    Raises [Invalid_argument] if the kernel does not have 9 entries. *)

val sobel_magnitude : Image.t -> Image.t
(** Approximate gradient magnitude [|gx| + |gy|], clamped to [0, 255]. *)

val box_blur : Image.t -> Image.t

val erode3 : Image.t -> Image.t
(** Grayscale erosion with a 3x3 structuring element. *)

val dilate3 : Image.t -> Image.t

val integral : Image.t -> int array
(** [integral img] is the summed-area table, dimensions
    [(w + 1) * (h + 1)] row-major, so that [rect_sum] is O(1). *)

val rect_sum : Image.t -> int array -> x:int -> y:int -> w:int -> h:int -> int
(** [rect_sum img sat ~x ~y ~w ~h] is the pixel sum over the (clipped)
    rectangle using a table built by [integral]. *)

val mean : Image.t -> float

val count_above : int -> Image.t -> int
(** [count_above t img] counts pixels with value [>= t]. *)

val diff_count : Image.t -> Image.t -> int
(** Number of differing pixels; raises [Invalid_argument] on dimension
    mismatch. *)

val median3 : Image.t -> Image.t
(** 3x3 median filter (border replicated); removes salt-and-pepper noise
    while preserving edges better than [box_blur]. *)

val gaussian5 : Image.t -> Image.t
(** 5x5 binomial (Gaussian-approximating) smoothing, kernel [1 4 6 4 1]
    separably, divisor 256. *)

val downsample2 : Image.t -> Image.t
(** Halves each dimension by 2x2 averaging. Output dimensions are
    [max 1 (w / 2)] by [max 1 (h / 2)]. *)

val upsample2 : Image.t -> Image.t
(** Doubles each dimension by pixel replication. *)

val flip_horizontal : Image.t -> Image.t
val flip_vertical : Image.t -> Image.t

val rotate90 : Image.t -> Image.t
(** Rotates a quarter turn clockwise; a [w x h] image becomes [h x w]. *)

val equalize : Image.t -> Image.t
(** Histogram equalisation: remaps levels so the cumulative distribution is
    approximately linear. The all-constant image maps to itself. *)
