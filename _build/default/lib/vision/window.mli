(** Rectangular windows of interest.

    The tracking application manipulates lists of windows whose number and
    sizes vary per frame (3–9 in normal tracking, [n] full-image tiles during
    reinitialisation) — precisely the uneven workload that motivates the [df]
    skeleton in the paper. *)

type t = { x : int; y : int; w : int; h : int }

val make : x:int -> y:int -> w:int -> h:int -> t
(** Raises [Invalid_argument] on non-positive dimensions. *)

val area : t -> int
val center : t -> float * float
val contains : t -> int -> int -> bool

val clip : t -> width:int -> height:int -> t option
(** [clip win ~width ~height] intersects with the image bounds; [None] when
    the intersection is empty. *)

val expand : t -> int -> t
(** [expand win m] grows the window by margin [m] on every side (may go
    negative in origin; clip afterwards). *)

val of_region : ?margin:int -> Ccl.region -> t
(** Window around a region's englobing frame, with optional margin
    (default 0). *)

val tile : width:int -> height:int -> int -> t list
(** [tile ~width ~height n] divides the full image into [n] windows of
    near-equal area (a grid as square as possible), the reinitialisation
    layout. The list always has exactly [n] elements covering every pixel;
    tiles are pairwise disjoint whenever [n <= width * height]. *)

val extract : Image.t -> t -> Image.t
(** [extract img win] copies the (clipped) window content. Raises
    [Invalid_argument] when the window lies fully outside the image. *)

val overlap : t -> t -> int
(** Intersection area in pixels. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
