(** Drawing primitives, for visualising tracker output.

    All operations mutate the image in place and silently clip against its
    bounds. [v] is the grey level drawn (clamped to [0, 255]). *)

val hline : Image.t -> x0:int -> x1:int -> y:int -> int -> unit
val vline : Image.t -> x:int -> y0:int -> y1:int -> int -> unit

val line : Image.t -> x0:int -> y0:int -> x1:int -> y1:int -> int -> unit
(** Bresenham line between the two endpoints (inclusive). *)

val rect : Image.t -> x:int -> y:int -> w:int -> h:int -> int -> unit
(** Rectangle outline. Degenerate (w or h <= 0) rectangles draw nothing. *)

val fill_rect : Image.t -> x:int -> y:int -> w:int -> h:int -> int -> unit

val cross : Image.t -> x:int -> y:int -> size:int -> int -> unit
(** A plus-shaped marker centred at [(x, y)], arms of [size] pixels. *)

val disc : Image.t -> x:int -> y:int -> r:int -> int -> unit

val window : Image.t -> Window.t -> int -> unit
(** Outline a window of interest. *)
