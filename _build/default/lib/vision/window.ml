type t = { x : int; y : int; w : int; h : int }

let make ~x ~y ~w ~h =
  if w <= 0 || h <= 0 then invalid_arg "Window.make: non-positive dimensions";
  { x; y; w; h }

let area win = win.w * win.h

let center win =
  ( float_of_int win.x +. (float_of_int win.w /. 2.0),
    float_of_int win.y +. (float_of_int win.h /. 2.0) )

let contains win px py =
  px >= win.x && px < win.x + win.w && py >= win.y && py < win.y + win.h

let clip win ~width ~height =
  let x0 = max 0 win.x and y0 = max 0 win.y in
  let x1 = min width (win.x + win.w) and y1 = min height (win.y + win.h) in
  if x1 > x0 && y1 > y0 then Some { x = x0; y = y0; w = x1 - x0; h = y1 - y0 }
  else None

let expand win m =
  { x = win.x - m; y = win.y - m; w = win.w + (2 * m); h = win.h + (2 * m) }

let of_region ?(margin = 0) (r : Ccl.region) =
  expand
    {
      x = r.Ccl.min_x;
      y = r.Ccl.min_y;
      w = r.Ccl.max_x - r.Ccl.min_x + 1;
      h = r.Ccl.max_y - r.Ccl.min_y + 1;
    }
    margin

let tile ~width ~height n =
  if n <= 0 then invalid_arg "Window.tile: n <= 0";
  (* Distribute n cells over ~sqrt(n) rows; each row's cells span the full
     width and the rows span the full height, so the tiles cover the image
     exactly (and are disjoint whenever the image is large enough). *)
  let rows = max 1 (min (min n height) (int_of_float (sqrt (float_of_int n)))) in
  let cells_base = n / rows and cells_extra = n mod rows in
  let out = ref [] in
  let y = ref 0 in
  for i = 0 to rows - 1 do
    let cells = cells_base + if i < cells_extra then 1 else 0 in
    let remaining_rows = rows - i in
    let h =
      if i = rows - 1 then max 1 (height - !y)
      else max 1 ((height - !y) / remaining_rows)
    in
    let x = ref 0 in
    for j = 0 to cells - 1 do
      let remaining = cells - j in
      let w =
        if j = cells - 1 then max 1 (width - !x)
        else max 1 ((width - !x) / remaining)
      in
      out := { x = min !x (width - 1); y = min !y (height - 1); w; h } :: !out;
      x := !x + w
    done;
    y := !y + h
  done;
  List.rev !out

let extract img win =
  match clip win ~width:(Image.width img) ~height:(Image.height img) with
  | None -> invalid_arg "Window.extract: window outside image"
  | Some c -> Image.sub img ~x:c.x ~y:c.y ~w:c.w ~h:c.h

let overlap a b =
  let x0 = max a.x b.x and y0 = max a.y b.y in
  let x1 = min (a.x + a.w) (b.x + b.w) and y1 = min (a.y + a.h) (b.y + b.h) in
  if x1 > x0 && y1 > y0 then (x1 - x0) * (y1 - y0) else 0

let equal a b = a.x = b.x && a.y = b.y && a.w = b.w && a.h = b.h
let pp ppf win = Format.fprintf ppf "[%d+%dx%d+%d]" win.x win.w win.y win.h
