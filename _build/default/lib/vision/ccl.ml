type labelling = {
  labels : int array;
  width : int;
  height : int;
  ncomponents : int;
}

type region = {
  label : int;
  area : int;
  cx : float;
  cy : float;
  min_x : int;
  min_y : int;
  max_x : int;
  max_y : int;
}

(* Union-find with path halving and union by rank. *)
module Uf = struct
  type t = { parent : int array; rank : int array }

  let create n = { parent = Array.init n Fun.id; rank = Array.make n 0 }

  let rec find t i =
    let p = t.parent.(i) in
    if p = i then i
    else begin
      t.parent.(i) <- t.parent.(p);
      find t t.parent.(i)
    end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then
      if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
      else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
      else begin
        t.parent.(rb) <- ra;
        t.rank.(ra) <- t.rank.(ra) + 1
      end
end

(* Renumber labels densely, in raster order of each component's first pixel,
   with 0 reserved for background. [raw] holds provisional labels >= 1. *)
let densify raw =
  let remap = Hashtbl.create 64 in
  let next = ref 0 in
  Array.iteri
    (fun i r ->
      if r <> 0 then begin
        match Hashtbl.find_opt remap r with
        | Some d -> raw.(i) <- d
        | None ->
            incr next;
            Hashtbl.add remap r !next;
            raw.(i) <- !next
      end)
    raw;
  !next

let label ~threshold img =
  let w = Image.width img and h = Image.height img in
  let labels = Array.make (w * h) 0 in
  let uf = Uf.create ((w * h / 2) + 2) in
  let next = ref 0 in
  (* First pass: provisional labels, record equivalences. *)
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if Image.get img x y >= threshold then begin
        let left = if x > 0 then labels.(((y * w) + x) - 1) else 0 in
        let up = if y > 0 then labels.(((y - 1) * w) + x) else 0 in
        let l =
          match (left, up) with
          | 0, 0 ->
              incr next;
              !next
          | l, 0 | 0, l -> l
          | l, u ->
              if l <> u then Uf.union uf l u;
              min l u
        in
        labels.((y * w) + x) <- l
      end
    done
  done;
  (* Second pass: resolve to representatives, then densify. *)
  for i = 0 to (w * h) - 1 do
    if labels.(i) <> 0 then labels.(i) <- Uf.find uf labels.(i)
  done;
  let ncomponents = densify labels in
  { labels; width = w; height = h; ncomponents }

let label_flood ~threshold img =
  let w = Image.width img and h = Image.height img in
  let labels = Array.make (w * h) 0 in
  let next = ref 0 in
  let queue = Queue.create () in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if Image.get img x y >= threshold && labels.((y * w) + x) = 0 then begin
        incr next;
        let l = !next in
        labels.((y * w) + x) <- l;
        Queue.add (x, y) queue;
        while not (Queue.is_empty queue) do
          let cx, cy = Queue.pop queue in
          let visit nx ny =
            if
              nx >= 0 && nx < w && ny >= 0 && ny < h
              && labels.((ny * w) + nx) = 0
              && Image.get img nx ny >= threshold
            then begin
              labels.((ny * w) + nx) <- l;
              Queue.add (nx, ny) queue
            end
          in
          visit (cx - 1) cy;
          visit (cx + 1) cy;
          visit cx (cy - 1);
          visit cx (cy + 1)
        done
      end
    done
  done;
  { labels; width = w; height = h; ncomponents = !next }

let regions lab =
  let n = lab.ncomponents in
  if n = 0 then []
  else begin
    let area = Array.make (n + 1) 0 in
    let sx = Array.make (n + 1) 0 and sy = Array.make (n + 1) 0 in
    let minx = Array.make (n + 1) max_int and miny = Array.make (n + 1) max_int in
    let maxx = Array.make (n + 1) min_int and maxy = Array.make (n + 1) min_int in
    for y = 0 to lab.height - 1 do
      for x = 0 to lab.width - 1 do
        let l = lab.labels.((y * lab.width) + x) in
        if l <> 0 then begin
          area.(l) <- area.(l) + 1;
          sx.(l) <- sx.(l) + x;
          sy.(l) <- sy.(l) + y;
          if x < minx.(l) then minx.(l) <- x;
          if x > maxx.(l) then maxx.(l) <- x;
          if y < miny.(l) then miny.(l) <- y;
          if y > maxy.(l) then maxy.(l) <- y
        end
      done
    done;
    List.init n (fun i ->
        let l = i + 1 in
        {
          label = l;
          area = area.(l);
          cx = float_of_int sx.(l) /. float_of_int area.(l);
          cy = float_of_int sy.(l) /. float_of_int area.(l);
          min_x = minx.(l);
          min_y = miny.(l);
          max_x = maxx.(l);
          max_y = maxy.(l);
        })
  end

let detect_regions ~threshold img = regions (label ~threshold img)

let equivalent a b =
  a.width = b.width && a.height = b.height
  && a.ncomponents = b.ncomponents
  &&
  let fwd = Hashtbl.create 64 and bwd = Hashtbl.create 64 in
  let ok = ref true in
  let n = a.width * a.height in
  let i = ref 0 in
  while !ok && !i < n do
    let la = a.labels.(!i) and lb = b.labels.(!i) in
    if (la = 0) <> (lb = 0) then ok := false
    else if la <> 0 then begin
      (match Hashtbl.find_opt fwd la with
      | Some lb' -> if lb' <> lb then ok := false
      | None -> Hashtbl.add fwd la lb);
      match Hashtbl.find_opt bwd lb with
      | Some la' -> if la' <> la then ok := false
      | None -> Hashtbl.add bwd lb la
    end;
    incr i
  done;
  !ok

let merge_bands ~width bands =
  (* Validate contiguity and reassemble raw labels with per-band offsets so
     provisional labels are globally unique, then union across seams. *)
  let total_height =
    List.fold_left
      (fun expected_y0 ((lab : labelling), y0) ->
        if lab.width <> width then invalid_arg "Ccl.merge_bands: width mismatch";
        if y0 <> expected_y0 then invalid_arg "Ccl.merge_bands: bands not contiguous";
        y0 + lab.height)
      0 bands
  in
  let labels = Array.make (width * total_height) 0 in
  let offset = ref 0 in
  let total_components =
    List.fold_left
      (fun acc ((lab : labelling), y0) ->
        Array.iteri
          (fun i l -> if l <> 0 then labels.((y0 * width) + i) <- l + !offset)
          lab.labels;
        offset := !offset + lab.ncomponents;
        acc + lab.ncomponents)
      0 bands
  in
  let uf = Uf.create (total_components + 1) in
  (* Union components that touch vertically across each seam. *)
  List.iter
    (fun ((lab : labelling), y0) ->
      if y0 > 0 then
        for x = 0 to width - 1 do
          let above = labels.(((y0 - 1) * width) + x)
          and below = labels.((y0 * width) + x) in
          if above <> 0 && below <> 0 then Uf.union uf above below
        done;
      ignore lab)
    bands;
  for i = 0 to Array.length labels - 1 do
    if labels.(i) <> 0 then labels.(i) <- Uf.find uf labels.(i)
  done;
  let ncomponents = densify labels in
  { labels; width; height = total_height; ncomponents }

let pp_region ppf r =
  Format.fprintf ppf
    "@[<h>region %d: area=%d cg=(%.1f, %.1f) frame=[%d..%d]x[%d..%d]@]" r.label
    r.area r.cx r.cy r.min_x r.max_x r.min_y r.max_y
