let put img x y v = if Image.in_bounds img x y then Image.set img x y v

let hline img ~x0 ~x1 ~y v =
  for x = min x0 x1 to max x0 x1 do
    put img x y v
  done

let vline img ~x ~y0 ~y1 v =
  for y = min y0 y1 to max y0 y1 do
    put img x y v
  done

let line img ~x0 ~y0 ~x1 ~y1 v =
  (* Bresenham over the dominant axis. *)
  let dx = abs (x1 - x0) and dy = abs (y1 - y0) in
  let sx = if x0 < x1 then 1 else -1 and sy = if y0 < y1 then 1 else -1 in
  let rec step x y err =
    put img x y v;
    if x <> x1 || y <> y1 then begin
      let e2 = 2 * err in
      let x', err' = if e2 > -dy then (x + sx, err - dy) else (x, err) in
      let y', err'' = if e2 < dx then (y + sy, err' + dx) else (y, err') in
      step x' y' err''
    end
  in
  step x0 y0 (dx - dy)

let rect img ~x ~y ~w ~h v =
  if w > 0 && h > 0 then begin
    hline img ~x0:x ~x1:(x + w - 1) ~y v;
    hline img ~x0:x ~x1:(x + w - 1) ~y:(y + h - 1) v;
    vline img ~x ~y0:y ~y1:(y + h - 1) v;
    vline img ~x:(x + w - 1) ~y0:y ~y1:(y + h - 1) v
  end

let fill_rect img ~x ~y ~w ~h v =
  for yy = y to y + h - 1 do
    for xx = x to x + w - 1 do
      put img xx yy v
    done
  done

let cross img ~x ~y ~size v =
  hline img ~x0:(x - size) ~x1:(x + size) ~y v;
  vline img ~x ~y0:(y - size) ~y1:(y + size) v

let disc img ~x ~y ~r v =
  for yy = y - r to y + r do
    for xx = x - r to x + r do
      if ((xx - x) * (xx - x)) + ((yy - y) * (yy - y)) <= r * r then put img xx yy v
    done
  done

let window img (w : Window.t) v =
  rect img ~x:w.Window.x ~y:w.Window.y ~w:w.Window.w ~h:w.Window.h v
