(** Connected-component labelling and region statistics.

    This is the detection kernel of the paper's vehicle-tracking case study
    (marks are "connected groups of pixels with values above a given
    threshold", characterised by centre of gravity and englobing frame) and
    the subject of the companion scm application (Ginhac et al., MVA'98).

    Connectivity is 4-neighbourhood. Foreground = pixels with value [>= t]. *)

type labelling = {
  labels : int array;  (** row-major, 0 = background, regions numbered from 1 *)
  width : int;
  height : int;
  ncomponents : int;
}

type region = {
  label : int;
  area : int;
  cx : float;  (** centre of gravity, x *)
  cy : float;
  min_x : int;  (** englobing frame, inclusive bounds *)
  min_y : int;
  max_x : int;
  max_y : int;
}

val label : threshold:int -> Image.t -> labelling
(** Two-pass union-find labelling. Labels are dense in [1, ncomponents] and
    assigned in raster order of each component's first pixel. *)

val label_flood : threshold:int -> Image.t -> labelling
(** Reference implementation: BFS flood fill. Same label-numbering convention
    as [label]; used as a test oracle. *)

val regions : labelling -> region list
(** Region statistics sorted by label. *)

val detect_regions : threshold:int -> Image.t -> region list
(** [label] followed by [regions]. *)

val equivalent : labelling -> labelling -> bool
(** True when two labellings define the same partition of foreground pixels
    (i.e. equal up to a bijective renaming of labels). *)

val merge_bands :
  width:int -> (labelling * int) list -> labelling
(** [merge_bands ~width bands] reassembles per-band labellings (each paired
    with its first row in the full image) into a labelling of the full image,
    joining components that touch across band boundaries. Bands must be
    contiguous, ordered, and all of width [width]. This is the "merge" stage
    of the scm-parallel CCL. *)

val pp_region : Format.formatter -> region -> unit
