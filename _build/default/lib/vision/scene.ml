type vehicle = { cx : float; cy : float; scale : float; visible : bool }

type params = {
  width : int;
  height : int;
  nvehicles : int;
  seed : int;
  noise : float;
  occlusion_period : int;
}

let default_params =
  {
    width = 512;
    height = 512;
    nvehicles = 2;
    seed = 42;
    noise = 3.0;
    occlusion_period = 0;
  }

(* Trajectories are smooth closed-form functions of time so that any frame can
   be rendered without simulating the previous ones. Each vehicle weaves
   laterally (lane changes) and breathes in scale (distance changes). *)
let vehicles_at p t =
  let ft = float_of_int t in
  List.init (max 1 (min 3 p.nvehicles)) (fun i ->
      let fi = float_of_int i in
      let phase = fi *. 2.1 in
      let base_x = float_of_int p.width *. (0.3 +. (0.2 *. fi)) in
      let cx = base_x +. (float_of_int p.width *. 0.08 *. sin ((ft /. 40.0) +. phase)) in
      let cy =
        (float_of_int p.height *. (0.45 +. (0.08 *. fi)))
        +. (float_of_int p.height *. 0.03 *. cos ((ft /. 55.0) +. phase))
      in
      let scale = 0.8 +. (0.25 *. sin ((ft /. 70.0) +. (1.3 *. phase))) in
      let visible =
        if i = 0 && p.occlusion_period > 0 then
          t mod p.occlusion_period >= 4 (* hidden for 4 frames per period *)
        else true
      in
      { cx; cy; scale; visible })

let mark_centers v =
  if not v.visible then []
  else
    let s = v.scale in
    (* Two marks on top corners, one at the back centre (paper Fig. 3). *)
    [
      (v.cx -. (22.0 *. s), v.cy -. (16.0 *. s));
      (v.cx +. (22.0 *. s), v.cy -. (16.0 *. s));
      (v.cx, v.cy +. (14.0 *. s));
    ]

let mark_radius v = max 2 (int_of_float (4.5 *. v.scale))

let draw_disc img cx cy r v =
  let x0 = int_of_float cx - r and y0 = int_of_float cy - r in
  for y = y0 to y0 + (2 * r) do
    for x = x0 to x0 + (2 * r) do
      if Image.in_bounds img x y then begin
        let dx = float_of_int x -. cx and dy = float_of_int y -. cy in
        if (dx *. dx) +. (dy *. dy) <= float_of_int (r * r) then Image.set img x y v
      end
    done
  done

let draw_rect img x0 y0 w h v =
  for y = y0 to y0 + h - 1 do
    for x = x0 to x0 + w - 1 do
      if Image.in_bounds img x y then Image.set img x y v
    done
  done

let render_background p img t =
  (* Vertical luminance gradient (sky to road) plus a faint texture that
     depends deterministically on position and frame. *)
  let h = p.height in
  for y = 0 to h - 1 do
    let base = 60 + (40 * y / h) in
    for x = 0 to p.width - 1 do
      let texture = (x * 7) + (y * 13) + (t * 3) in
      Image.set img x y (base + (texture mod 11))
    done
  done

let render_vehicle img v =
  if v.visible then begin
    let s = v.scale in
    let bw = int_of_float (60.0 *. s) and bh = int_of_float (44.0 *. s) in
    (* Dark body rectangle, slightly darker roof band. *)
    draw_rect img
      (int_of_float v.cx - (bw / 2))
      (int_of_float v.cy - (bh / 2))
      bw bh 35;
    draw_rect img
      (int_of_float v.cx - (bw / 2))
      (int_of_float v.cy - (bh / 2))
      bw (bh / 4) 25;
    List.iter (fun (mx, my) -> draw_disc img mx my (mark_radius v) 250) (mark_centers v)
  end

let add_noise p img t =
  if p.noise > 0.0 then begin
    let rng = Support.Prng.create (p.seed + (t * 7919)) in
    let n = Image.size img in
    (* Perturb a pseudo-random 20% of pixels; keeps marks distinguishable
       while still exercising threshold robustness. *)
    for _ = 1 to n / 5 do
      let x = Support.Prng.int rng (Image.width img)
      and y = Support.Prng.int rng (Image.height img) in
      let d = int_of_float (p.noise *. Support.Prng.gaussian rng) in
      let v = Image.get img x y in
      (* Never push background pixels into mark range nor marks below it. *)
      let v' = if v >= 220 then max 220 (v + d) else min 179 (max 0 (v + d)) in
      Image.set img x y v'
    done
  end

let frame p t =
  let img = Image.create p.width p.height in
  render_background p img t;
  List.iter (render_vehicle img) (vehicles_at p t);
  add_noise p img t;
  img

let road_frame ?(curvature = 0.0005) ~width ~height t =
  let img = Image.create width height in
  (* Asphalt with mild texture. *)
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      Image.set img x y (50 + (((x * 3) + (y * 5)) mod 9))
    done
  done;
  (* Perspective road: lines converge towards a vanishing point that drifts
     with the curvature phase. *)
  let vanish_x =
    (float_of_int width /. 2.0)
    +. (float_of_int width *. 0.25 *. sin (curvature *. float_of_int (t * t)))
  in
  let horizon = height / 3 in
  let line_at frac y =
    (* x position of a road line at row y, interpolating bottom -> vanish. *)
    let fy = float_of_int (y - horizon) /. float_of_int (height - horizon) in
    let bottom_x = float_of_int width *. frac in
    vanish_x +. ((bottom_x -. vanish_x) *. fy)
  in
  for y = horizon to height - 1 do
    let thickness = 1 + ((y - horizon) * 4 / (height - horizon)) in
    let draw frac dashed =
      let x = int_of_float (line_at frac y) in
      let on = (not dashed) || (y + (t * 5)) mod 24 < 14 in
      if on then
        for dx = -thickness to thickness do
          if Image.in_bounds img (x + dx) y then Image.set img (x + dx) y 245
        done
    in
    draw 0.12 false;
    draw 0.88 false;
    draw 0.5 true
  done;
  img

let ground_truth_marks p t = List.concat_map mark_centers (vehicles_at p t)
