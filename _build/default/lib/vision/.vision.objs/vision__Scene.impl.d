lib/vision/scene.ml: Image List Support
