lib/vision/window.ml: Ccl Format Image List
