lib/vision/ops.ml: Array Image
