lib/vision/ccl.mli: Format Image
