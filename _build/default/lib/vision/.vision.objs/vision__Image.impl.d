lib/vision/image.ml: Bytes Char Format Fun In_channel List Printf Result String
