lib/vision/ccl.ml: Array Format Fun Hashtbl Image List Queue
