lib/vision/image.mli: Bytes Format
