lib/vision/draw.ml: Image Window
