lib/vision/draw.mli: Image Window
