lib/vision/ops.mli: Image
