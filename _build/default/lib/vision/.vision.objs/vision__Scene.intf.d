lib/vision/scene.mli: Image
