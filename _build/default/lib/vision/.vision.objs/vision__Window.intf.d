lib/vision/window.mli: Ccl Format Image
