let threshold t img = Image.map (fun v -> if v >= t then 255 else 0) img
let invert img = Image.map (fun v -> 255 - v) img

let histogram img =
  let h = Array.make 256 0 in
  Image.iter (fun _ _ v -> h.(v) <- h.(v) + 1) img;
  h

let otsu_threshold img =
  let hist = histogram img in
  let total = Image.size img in
  let sum = ref 0.0 in
  Array.iteri (fun i n -> sum := !sum +. float_of_int (i * n)) hist;
  let sum_b = ref 0.0 and w_b = ref 0 and best = ref 0 and best_var = ref (-1.0) in
  for t = 0 to 255 do
    w_b := !w_b + hist.(t);
    if !w_b > 0 && !w_b < total then begin
      sum_b := !sum_b +. float_of_int (t * hist.(t));
      let w_f = total - !w_b in
      let m_b = !sum_b /. float_of_int !w_b in
      let m_f = (!sum -. !sum_b) /. float_of_int w_f in
      let between =
        float_of_int !w_b *. float_of_int w_f *. (m_b -. m_f) *. (m_b -. m_f)
      in
      if between > !best_var then begin
        best_var := between;
        best := t
      end
    end
    else if !w_b > 0 && !w_b = total && !best_var < 0.0 then best := t
  done;
  !best

let clamp_coord v lo hi = if v < lo then lo else if v > hi then hi else v

let convolve3 kernel ?(div = 1) img =
  if Array.length kernel <> 9 then invalid_arg "Ops.convolve3: kernel must be 3x3";
  if div = 0 then invalid_arg "Ops.convolve3: div = 0";
  let w = Image.width img and h = Image.height img in
  let dst = Image.create w h in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let acc = ref 0 in
      for ky = -1 to 1 do
        for kx = -1 to 1 do
          let sx = clamp_coord (x + kx) 0 (w - 1)
          and sy = clamp_coord (y + ky) 0 (h - 1) in
          acc := !acc + (kernel.(((ky + 1) * 3) + kx + 1) * Image.get img sx sy)
        done
      done;
      Image.set dst x y (!acc / div)
    done
  done;
  dst

let sobel_magnitude img =
  let w = Image.width img and h = Image.height img in
  let dst = Image.create w h in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let p dx dy =
        Image.get img (clamp_coord (x + dx) 0 (w - 1)) (clamp_coord (y + dy) 0 (h - 1))
      in
      let gx =
        -p (-1) (-1) + p 1 (-1) - (2 * p (-1) 0) + (2 * p 1 0) - p (-1) 1 + p 1 1
      and gy =
        -p (-1) (-1) - (2 * p 0 (-1)) - p 1 (-1) + p (-1) 1 + (2 * p 0 1) + p 1 1
      in
      Image.set dst x y (abs gx + abs gy)
    done
  done;
  dst

let box_blur img = convolve3 [| 1; 1; 1; 1; 1; 1; 1; 1; 1 |] ~div:9 img

let morph3 select img =
  let w = Image.width img and h = Image.height img in
  let dst = Image.create w h in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let best = ref (Image.get img x y) in
      for ky = -1 to 1 do
        for kx = -1 to 1 do
          let sx = clamp_coord (x + kx) 0 (w - 1)
          and sy = clamp_coord (y + ky) 0 (h - 1) in
          best := select !best (Image.get img sx sy)
        done
      done;
      Image.set dst x y !best
    done
  done;
  dst

let erode3 img = morph3 min img
let dilate3 img = morph3 max img

let integral img =
  let w = Image.width img and h = Image.height img in
  let sat = Array.make ((w + 1) * (h + 1)) 0 in
  for y = 1 to h do
    let row_sum = ref 0 in
    for x = 1 to w do
      row_sum := !row_sum + Image.get img (x - 1) (y - 1);
      sat.((y * (w + 1)) + x) <- sat.(((y - 1) * (w + 1)) + x) + !row_sum
    done
  done;
  sat

let rect_sum img sat ~x ~y ~w ~h =
  let iw = Image.width img and ih = Image.height img in
  let x0 = clamp_coord x 0 iw and y0 = clamp_coord y 0 ih in
  let x1 = clamp_coord (x + w) 0 iw and y1 = clamp_coord (y + h) 0 ih in
  let at xx yy = sat.((yy * (iw + 1)) + xx) in
  at x1 y1 - at x0 y1 - at x1 y0 + at x0 y0

let mean img =
  let total = Image.fold (fun acc v -> acc + v) 0 img in
  float_of_int total /. float_of_int (Image.size img)

let count_above t img = Image.fold (fun acc v -> if v >= t then acc + 1 else acc) 0 img

let diff_count a b =
  if Image.width a <> Image.width b || Image.height a <> Image.height b then
    invalid_arg "Ops.diff_count: dimension mismatch";
  let n = ref 0 in
  Image.iter (fun x y v -> if Image.get b x y <> v then incr n) a;
  !n

let median3 img =
  let w = Image.width img and h = Image.height img in
  let dst = Image.create w h in
  let window = Array.make 9 0 in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let k = ref 0 in
      for ky = -1 to 1 do
        for kx = -1 to 1 do
          window.(!k) <-
            Image.get img (clamp_coord (x + kx) 0 (w - 1)) (clamp_coord (y + ky) 0 (h - 1));
          incr k
        done
      done;
      Array.sort compare window;
      Image.set dst x y window.(4)
    done
  done;
  dst

let gaussian5 img =
  (* separable binomial kernel [1; 4; 6; 4; 1] *)
  let w = Image.width img and h = Image.height img in
  let kernel = [| 1; 4; 6; 4; 1 |] in
  let tmp = Array.make (w * h) 0 in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let acc = ref 0 in
      for k = -2 to 2 do
        acc := !acc + (kernel.(k + 2) * Image.get img (clamp_coord (x + k) 0 (w - 1)) y)
      done;
      tmp.((y * w) + x) <- !acc
    done
  done;
  let dst = Image.create w h in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let acc = ref 0 in
      for k = -2 to 2 do
        acc := !acc + (kernel.(k + 2) * tmp.((clamp_coord (y + k) 0 (h - 1) * w) + x))
      done;
      Image.set dst x y (!acc / 256)
    done
  done;
  dst

let downsample2 img =
  let w = Image.width img and h = Image.height img in
  let dw = max 1 (w / 2) and dh = max 1 (h / 2) in
  let dst = Image.create dw dh in
  for y = 0 to dh - 1 do
    for x = 0 to dw - 1 do
      let sx = min (w - 1) (2 * x) and sy = min (h - 1) (2 * y) in
      let sx1 = min (w - 1) (sx + 1) and sy1 = min (h - 1) (sy + 1) in
      let sum =
        Image.get img sx sy + Image.get img sx1 sy + Image.get img sx sy1
        + Image.get img sx1 sy1
      in
      Image.set dst x y (sum / 4)
    done
  done;
  dst

let upsample2 img =
  let w = Image.width img and h = Image.height img in
  let dst = Image.create (2 * w) (2 * h) in
  Image.iter
    (fun x y v ->
      Image.set dst (2 * x) (2 * y) v;
      Image.set dst ((2 * x) + 1) (2 * y) v;
      Image.set dst (2 * x) ((2 * y) + 1) v;
      Image.set dst ((2 * x) + 1) ((2 * y) + 1) v)
    img;
  dst

let flip_horizontal img =
  let w = Image.width img in
  Image.mapi (fun x y _ -> Image.get img (w - 1 - x) y) img

let flip_vertical img =
  let h = Image.height img in
  Image.mapi (fun x y _ -> Image.get img x (h - 1 - y)) img

let rotate90 img =
  let w = Image.width img and h = Image.height img in
  let dst = Image.create h w in
  Image.iter (fun x y v -> Image.set dst (h - 1 - y) x v) img;
  dst

let equalize img =
  let hist = histogram img in
  let total = Image.size img in
  let cdf = Array.make 256 0 in
  let running = ref 0 in
  Array.iteri
    (fun i n ->
      running := !running + n;
      cdf.(i) <- !running)
    hist;
  (* smallest non-zero CDF value, for the standard normalisation *)
  let cdf_min =
    let rec first i = if i >= 256 then total else if hist.(i) > 0 then cdf.(i) else first (i + 1) in
    first 0
  in
  if cdf_min >= total then Image.copy img
  else
    Image.map
      (fun v -> (cdf.(v) - cdf_min) * 255 / (total - cdf_min))
      img
