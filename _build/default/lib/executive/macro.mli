(** Target-independent macro-code emission.

    SynDEx's executives are emitted as m4 macro-code, one file per
    processor, later turned into compilable code by inlining a small set of
    kernel primitives ([comp_], [send_], [recv_], [loop_], ...). This module
    reproduces that textual stage: given a mapped process graph it prints,
    for each processor, the processes it hosts and the kernel-primitive
    sequence each executes per stream iteration. The simulator's behaviours
    ({!Executive}) are the inlined form of exactly these sequences, so the
    emitted text documents what actually runs. *)

val emit_processor : Procnet.Graph.t -> placement:int array -> int -> string
(** Macro-code for one processor. *)

val emit : Procnet.Graph.t -> placement:int array -> arch:Archi.t -> string
(** Full macro-code listing: a [divert]-style header, one
    [define(`Pk_PROGRAM', ...)] block per processor in use, plus the channel
    allocation table derived from cross-processor edges. *)

val channel_table : Procnet.Graph.t -> placement:int array -> (string * int * int) list
(** [(name, from_proc, to_proc)] for every inter-processor channel, named
    [chan_<src>_<dst>_<port>]. *)
