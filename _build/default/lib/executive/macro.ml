module G = Procnet.Graph

let chan_name (e : G.edge) = Printf.sprintf "chan_%d_%d_%s" e.src e.dst e.dst_port

let channel_table g ~placement =
  List.filter_map
    (fun (e : G.edge) ->
      let pa = placement.(e.src) and pb = placement.(e.dst) in
      if pa <> pb then Some (chan_name e, pa, pb) else None)
    (G.edges g)

(* One kernel-primitive line per communication or computation, mirroring the
   executive behaviours. *)
let ops_of_node g (node : G.node) =
  let recv (e : G.edge) = Printf.sprintf "recv_(%s, %s)" (chan_name e) e.dst_port in
  let send (e : G.edge) = Printf.sprintf "send_(%s, %s)" (chan_name e) e.src_port in
  let recvs port =
    List.filter (fun (e : G.edge) -> e.dst_port = port) (G.in_edges g node.id)
    |> List.map recv
  in
  let sends port = List.map send (G.out_edges_from_port g node.id port) in
  match node.kind with
  | G.Input fn -> [ Printf.sprintf "comp_(%s, frame)" fn ] @ sends "out"
  | G.Output fn -> recvs "in" @ [ Printf.sprintf "comp_(%s, display)" fn ]
  | G.Compute fn | G.ScmCompute { fn; _ } ->
      recvs "in" @ [ Printf.sprintf "comp_(%s)" fn ] @ sends "out"
  | G.ScmSplit { fn; nparts } ->
      recvs "in"
      @ [ Printf.sprintf "comp_(%s, nparts=%d)" fn nparts ]
      @ List.concat_map (fun i -> sends (Printf.sprintf "p%d" i)) (List.init nparts Fun.id)
  | G.ScmMerge { fn; nparts } ->
      List.concat_map (fun i -> recvs (Printf.sprintf "p%d" i)) (List.init nparts Fun.id)
      @ [ Printf.sprintf "comp_(%s)" fn ]
      @ sends "out"
  | G.DfMaster { acc; nworkers; _ } | G.TfMaster { acc; nworkers; _ } ->
      recvs "in"
      @ [
          Printf.sprintf "farm_(workers=%d) {" nworkers;
          Printf.sprintf "  dispatch_(task)";
          Printf.sprintf "  on_result_ { comp_(%s) ; dispatch_(task) }" acc;
          "}";
        ]
      @ sends "out"
  | G.DfWorker { comp } ->
      [ "serve_ {"; Printf.sprintf "  recv_task_ ; comp_(%s) ; send_result_" comp; "}" ]
  | G.TfWorker { work } ->
      [
        "serve_ {";
        Printf.sprintf "  recv_task_ ; comp_(%s) ; send_packets_ ; send_result_" work;
        "}";
      ]
  | G.Mem _ -> sends "out" @ recvs "update"
  | G.Join -> recvs "state" @ recvs "data" @ [ "pair_" ] @ sends "out"
  | G.Fork -> recvs "in" @ [ "unpair_" ] @ sends "fst" @ sends "snd"
  | G.Router { dir = `Mw } -> [ "route_mw_" ]
  | G.Router { dir = `Wm } -> [ "route_wm_" ]

let emit_processor g ~placement p =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "define(`P%d_PROGRAM', `\n" p);
  Array.iter
    (fun (node : G.node) ->
      if placement.(node.id) = p then begin
        Buffer.add_string buf
          (Printf.sprintf "  thread_(`%s',  dnl %s\n" node.label (G.kind_name node.kind));
        Buffer.add_string buf "    loop_(\n";
        List.iter
          (fun op -> Buffer.add_string buf (Printf.sprintf "      %s\n" op))
          (ops_of_node g node);
        Buffer.add_string buf "    ))\n"
      end)
    (G.nodes g);
  Buffer.add_string buf "')\n";
  Buffer.contents buf

let emit g ~placement ~arch =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "divert(-1)\n";
  Buffer.add_string buf
    (Printf.sprintf "dnl SKiPPER distributed executive for %s on %s\n" (G.name g)
       (Archi.name arch));
  Buffer.add_string buf
    "dnl generated macro-code; inline kernel primitives to obtain target code\n";
  Buffer.add_string buf "divert(0)\n";
  List.iter
    (fun (name, a, b) ->
      Buffer.add_string buf (Printf.sprintf "alloc_channel_(%s, P%d, P%d)\n" name a b))
    (channel_table g ~placement);
  let used = Array.make (Archi.nprocs arch) false in
  Array.iter (fun p -> used.(p) <- true) placement;
  Array.iteri
    (fun p in_use -> if in_use then Buffer.add_string buf (emit_processor g ~placement p))
    used;
  Buffer.contents buf
