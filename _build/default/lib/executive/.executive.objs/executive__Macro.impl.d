lib/executive/macro.ml: Archi Array Buffer Fun List Printf Procnet
