lib/executive/executive.mli: Archi Machine Macro Procnet Skel Syndex
