lib/executive/macro.mli: Archi Procnet
