lib/executive/executive.ml: Array Hashtbl List Machine Macro Option Printf Procnet Queue Skel Syndex
