type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | TYVAR of string
  | LET
  | REC
  | IN
  | IF
  | THEN
  | ELSE
  | FUN
  | MATCH
  | WITH
  | BAR
  | TRUE
  | FALSE
  | EXTERNAL
  | ARROW
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | SEMISEMI
  | COLON
  | EQUAL
  | OP of string
  | STAR
  | UNDERSCORE
  | EOF

type located = { tok : token; line : int; col : int }

exception Lex_error of string * Ast.loc

let error msg line col = raise (Lex_error (msg, { Ast.line; col }))

let keyword = function
  | "let" -> Some LET
  | "rec" -> Some REC
  | "in" -> Some IN
  | "if" -> Some IF
  | "then" -> Some THEN
  | "else" -> Some ELSE
  | "fun" | "function" -> Some FUN
  | "match" -> Some MATCH
  | "with" -> Some WITH
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | "external" -> Some EXTERNAL
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || c = '_'

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  let out = ref [] in
  let emit tok at = out := { tok; line = !line; col = at - !bol + 1 } :: !out in
  let rec skip_comment i depth start_line =
    if i + 1 >= n then error "unterminated comment" start_line 0
    else if src.[i] = '*' && src.[i + 1] = ')' then
      if depth = 1 then i + 2 else skip_comment (i + 2) (depth - 1) start_line
    else if src.[i] = '(' && src.[i + 1] = '*' then
      skip_comment (i + 2) (depth + 1) start_line
    else begin
      if src.[i] = '\n' then begin
        incr line;
        bol := i + 1
      end;
      skip_comment (i + 1) depth start_line
    end
  in
  let rec go i =
    if i >= n then emit EOF i
    else
      let c = src.[i] in
      match c with
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\n' ->
          incr line;
          bol := i + 1;
          go (i + 1)
      | '(' when i + 1 < n && src.[i + 1] = '*' -> go (skip_comment (i + 2) 1 !line)
      | '(' ->
          emit LPAREN i;
          go (i + 1)
      | ')' ->
          emit RPAREN i;
          go (i + 1)
      | '[' ->
          emit LBRACKET i;
          go (i + 1)
      | ']' ->
          emit RBRACKET i;
          go (i + 1)
      | ',' ->
          emit COMMA i;
          go (i + 1)
      | ';' ->
          if i + 1 < n && src.[i + 1] = ';' then begin
            emit SEMISEMI i;
            go (i + 2)
          end
          else begin
            emit SEMI i;
            go (i + 1)
          end
      | '_' when i + 1 >= n || not (is_ident_char src.[i + 1]) ->
          emit UNDERSCORE i;
          go (i + 1)
      | '\'' ->
          (* type variable 'a *)
          let rec stop j = if j < n && is_ident_char src.[j] then stop (j + 1) else j in
          let j = stop (i + 1) in
          if j = i + 1 then error "lone quote" !line (i - !bol + 1)
          else begin
            emit (TYVAR (String.sub src (i + 1) (j - i - 1))) i;
            go j
          end
      | '"' ->
          let buf = Buffer.create 16 in
          let rec scan j =
            if j >= n then error "unterminated string" !line (i - !bol + 1)
            else if src.[j] = '"' then j + 1
            else if src.[j] = '\\' && j + 1 < n then begin
              (match src.[j + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | '\\' -> Buffer.add_char buf '\\'
              | '"' -> Buffer.add_char buf '"'
              | c -> Buffer.add_char buf c);
              scan (j + 2)
            end
            else begin
              Buffer.add_char buf src.[j];
              scan (j + 1)
            end
          in
          let j = scan (i + 1) in
          emit (STRING (Buffer.contents buf)) i;
          go j
      | c when is_digit c ->
          let rec digits j = if j < n && is_digit src.[j] then digits (j + 1) else j in
          let j = digits i in
          if j < n && src.[j] = '.' then begin
            let k = digits (j + 1) in
            let k =
              if k < n && (src.[k] = 'e' || src.[k] = 'E') then
                let k' = if k + 1 < n && (src.[k + 1] = '-' || src.[k + 1] = '+') then k + 2 else k + 1 in
                digits k'
              else k
            in
            emit (FLOAT (float_of_string (String.sub src i (k - i)))) i;
            go k
          end
          else begin
            emit (INT (int_of_string (String.sub src i (j - i)))) i;
            go j
          end
      | c when is_ident_start c ->
          let rec stop j = if j < n && is_ident_char src.[j] then stop (j + 1) else j in
          let j = stop i in
          let word = String.sub src i (j - i) in
          (match keyword word with
          | Some tok -> emit tok i
          | None -> emit (IDENT word) i);
          go j
      | '-' when i + 1 < n && src.[i + 1] = '>' ->
          emit ARROW i;
          go (i + 2)
      | ':' when i + 1 < n && src.[i + 1] = ':' ->
          emit (OP "::") i;
          go (i + 2)
      | ':' ->
          emit COLON i;
          go (i + 1)
      | '=' ->
          emit EQUAL i;
          go (i + 1)
      | '*' when i + 1 < n && src.[i + 1] = '.' ->
          emit (OP "*.") i;
          go (i + 2)
      | '*' ->
          emit STAR i;
          go (i + 1)
      | '+' | '-' | '/' ->
          if i + 1 < n && src.[i + 1] = '.' then begin
            emit (OP (Printf.sprintf "%c." c)) i;
            go (i + 2)
          end
          else begin
            emit (OP (String.make 1 c)) i;
            go (i + 1)
          end
      | '<' ->
          if i + 1 < n && (src.[i + 1] = '=' || src.[i + 1] = '>') then begin
            emit (OP (Printf.sprintf "<%c" src.[i + 1])) i;
            go (i + 2)
          end
          else begin
            emit (OP "<") i;
            go (i + 1)
          end
      | '>' ->
          if i + 1 < n && src.[i + 1] = '=' then begin
            emit (OP ">=") i;
            go (i + 2)
          end
          else begin
            emit (OP ">") i;
            go (i + 1)
          end
      | '&' when i + 1 < n && src.[i + 1] = '&' ->
          emit (OP "&&") i;
          go (i + 2)
      | '|' when i + 1 < n && src.[i + 1] = '|' ->
          emit (OP "||") i;
          go (i + 2)
      | '|' ->
          emit BAR i;
          go (i + 1)
      | '@' ->
          emit (OP "@") i;
          go (i + 1)
      | '^' ->
          emit (OP "^") i;
          go (i + 1)
      | c -> error (Printf.sprintf "unexpected character %C" c) !line (i - !bol + 1)
  in
  go 0;
  List.rev !out

let token_name = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | TYVAR s -> "'" ^ s
  | LET -> "let"
  | REC -> "rec"
  | IN -> "in"
  | IF -> "if"
  | THEN -> "then"
  | ELSE -> "else"
  | FUN -> "fun"
  | MATCH -> "match"
  | WITH -> "with"
  | BAR -> "|"
  | TRUE -> "true"
  | FALSE -> "false"
  | EXTERNAL -> "external"
  | ARROW -> "->"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | SEMISEMI -> ";;"
  | COLON -> ":"
  | EQUAL -> "="
  | OP s -> s
  | STAR -> "*"
  | UNDERSCORE -> "_"
  | EOF -> "<eof>"
