(** Call-by-value interpreter: the sequential-emulation branch of the
    toolchain (paper Fig. 2, "Sequential Emulation").

    Skeletons evaluate by their declarative definitions, with [itermem]
    bounded to a configurable number of frames (the paper's version loops
    forever on live video). External functions resolve to entries of a
    {!Skel.Funtable.t}; their arguments cross the boundary as
    {!Skel.Value.t}s (tuples of ground values), and their per-call cycle
    costs are summed into the context so the emulator can also report the
    single-processor execution-time estimate.

    Camera convention: when an [itermem] input function is registered with
    arity 2, the emulator (like the parallel executive) passes it
    [(x, frame_index)] — the paper's [read_img] is a stateful video source;
    the explicit frame index keeps our functions pure. *)

type value =
  | Vbase of Skel.Value.t
  | Vtuple of value list
  | Vlist of value list
  | Vclos of closure
  | Vbuiltin of string * int * value list  (** name, arity, collected args *)

and closure

exception Runtime_error of string

type ctx = {
  table : Skel.Funtable.t;
  frames : int;
  mutable collected : Skel.Value.t list;  (** itermem outputs, reverse order *)
  mutable final_state : Skel.Value.t option;
  mutable cycles : float;  (** total external-function cycles charged *)
}

type env

val to_skel : value -> Skel.Value.t
(** Raises [Runtime_error] on closures/partial applications. *)

val of_skel : Skel.Value.t -> value
val value_equal : value -> value -> bool
val pp_value : Format.formatter -> value -> unit

val initial_env : ctx -> env
(** Builtins + skeletons; externals are added by [eval_program]. *)

val make_ctx : ?frames:int -> Skel.Funtable.t -> ctx
(** Default [frames] = 1. *)

val eval_expr : ctx -> env -> Ast.expr -> value
val eval_program : ctx -> Ast.program -> env
(** Evaluates top-level bindings in order (external declarations bind table
    entries); returns the final environment. *)

val eval_program_env : ctx -> env -> Ast.program -> env
(** Like [eval_program] but extending an existing environment (REPL use). *)

val lookup : env -> string -> value option

val run_main : ctx -> Ast.program -> value
(** [eval_program] then the value of [main]; raises [Runtime_error] if
    [main] is unbound. *)

val emulation_result : ctx -> value -> Skel.Value.t
(** Shapes an emulation outcome like {!Skel.Sem.run}: when the context
    collected itermem outputs, [Tuple [final_state; List outputs]];
    otherwise the converted main value. *)
