exception Parse_error of string * Ast.loc

type state = { toks : Lexer.located array; mutable pos : int }

let loc_of (l : Lexer.located) = { Ast.line = l.line; col = l.col }
let peek st = st.toks.(st.pos)
let peek2 st = if st.pos + 1 < Array.length st.toks then Some st.toks.(st.pos + 1) else None
let advance st = st.pos <- st.pos + 1

let error st msg =
  let l = peek st in
  raise
    (Parse_error
       ( Printf.sprintf "%s (found %s)" msg (Lexer.token_name l.Lexer.tok),
         loc_of l ))

let expect st tok msg =
  if (peek st).Lexer.tok = tok then advance st else error st msg

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)

let rec parse_pattern st =
  let l = peek st in
  let loc = loc_of l in
  match l.Lexer.tok with
  | Lexer.IDENT x ->
      advance st;
      Ast.Pvar (x, loc)
  | Lexer.UNDERSCORE ->
      advance st;
      Ast.Pwild loc
  | Lexer.LPAREN -> (
      advance st;
      match (peek st).Lexer.tok with
      | Lexer.RPAREN ->
          advance st;
          Ast.Punit loc
      | _ ->
          let first = parse_pattern st in
          let rec more acc =
            match (peek st).Lexer.tok with
            | Lexer.COMMA ->
                advance st;
                more (parse_pattern st :: acc)
            | _ -> List.rev acc
          in
          let ps = more [ first ] in
          expect st Lexer.RPAREN "expected ')' after pattern";
          (match ps with [ p ] -> p | ps -> Ast.Ptuple (ps, loc)))
  | _ -> error st "expected a pattern"

(* Full patterns for match arms: additionally literals, [] and cons. *)
let rec parse_match_pattern st =
  let head = parse_match_patom st in
  match (peek st).Lexer.tok with
  | Lexer.OP "::" ->
      let loc = loc_of (peek st) in
      advance st;
      Ast.Pcons (head, parse_match_pattern st, loc)
  | _ -> head

and parse_match_patom st =
  let l = peek st in
  let loc = loc_of l in
  match l.Lexer.tok with
  | Lexer.IDENT x ->
      advance st;
      Ast.Pvar (x, loc)
  | Lexer.UNDERSCORE ->
      advance st;
      Ast.Pwild loc
  | Lexer.INT n ->
      advance st;
      Ast.Pconst (Ast.Cint n, loc)
  | Lexer.FLOAT f ->
      advance st;
      Ast.Pconst (Ast.Cfloat f, loc)
  | Lexer.STRING str ->
      advance st;
      Ast.Pconst (Ast.Cstring str, loc)
  | Lexer.TRUE ->
      advance st;
      Ast.Pconst (Ast.Cbool true, loc)
  | Lexer.FALSE ->
      advance st;
      Ast.Pconst (Ast.Cbool false, loc)
  | Lexer.LBRACKET -> (
      advance st;
      match (peek st).Lexer.tok with
      | Lexer.RBRACKET ->
          advance st;
          Ast.Pnil loc
      | _ ->
          (* [p1; p2] sugar for p1 :: p2 :: [] *)
          let first = parse_match_pattern st in
          let rec more acc =
            match (peek st).Lexer.tok with
            | Lexer.SEMI ->
                advance st;
                more (parse_match_pattern st :: acc)
            | _ -> List.rev acc
          in
          let ps = more [ first ] in
          expect st Lexer.RBRACKET "expected ']' in list pattern";
          List.fold_right (fun p acc -> Ast.Pcons (p, acc, loc)) ps (Ast.Pnil loc))
  | Lexer.LPAREN -> (
      advance st;
      match (peek st).Lexer.tok with
      | Lexer.RPAREN ->
          advance st;
          Ast.Punit loc
      | _ ->
          let first = parse_match_pattern st in
          let rec more acc =
            match (peek st).Lexer.tok with
            | Lexer.COMMA ->
                advance st;
                more (parse_match_pattern st :: acc)
            | _ -> List.rev acc
          in
          let ps = more [ first ] in
          expect st Lexer.RPAREN "expected ')' in pattern";
          (match ps with [ p ] -> p | ps -> Ast.Ptuple (ps, loc)))
  | _ -> error st "expected a pattern"

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

let rec parse_type st =
  let left = parse_type_tuple st in
  match (peek st).Lexer.tok with
  | Lexer.ARROW ->
      let loc = loc_of (peek st) in
      advance st;
      let right = parse_type st in
      Ast.Tarrow_expr (left, right, loc)
  | _ -> left

and parse_type_tuple st =
  let first = parse_type_app st in
  let rec more acc =
    match (peek st).Lexer.tok with
    | Lexer.STAR ->
        advance st;
        more (parse_type_app st :: acc)
    | _ -> List.rev acc
  in
  match more [ first ] with
  | [ t ] -> t
  | t :: _ as ts -> Ast.Ttuple_expr (ts, type_expr_loc t)
  | [] -> assert false

and type_expr_loc = function
  | Ast.Tname (_, _, l) | Ast.Tvar_expr (_, l) | Ast.Tarrow_expr (_, _, l)
  | Ast.Ttuple_expr (_, l) ->
      l

and parse_type_app st =
  let atom = parse_type_atom st in
  (* postfix constructors: int list, 'a list list *)
  let rec post t =
    match (peek st).Lexer.tok with
    | Lexer.IDENT n ->
        let loc = loc_of (peek st) in
        advance st;
        post (Ast.Tname (n, [ t ], loc))
    | _ -> t
  in
  post atom

and parse_type_atom st =
  let l = peek st in
  let loc = loc_of l in
  match l.Lexer.tok with
  | Lexer.TYVAR v ->
      advance st;
      Ast.Tvar_expr (v, loc)
  | Lexer.IDENT n ->
      advance st;
      Ast.Tname (n, [], loc)
  | Lexer.LPAREN ->
      advance st;
      let t = parse_type st in
      expect st Lexer.RPAREN "expected ')' in type";
      t
  | _ -> error st "expected a type"

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let atom_start = function
  | Lexer.IDENT "mod" -> false (* infix keyword-operator, never an atom *)
  | Lexer.INT _ | Lexer.FLOAT _ | Lexer.STRING _ | Lexer.IDENT _ | Lexer.TRUE
  | Lexer.FALSE | Lexer.LPAREN | Lexer.LBRACKET ->
      true
  | _ -> false

let rec parse_expr st = parse_seq st

and parse_seq st =
  let first = parse_nonseq st in
  match (peek st).Lexer.tok with
  | Lexer.SEMI -> (
      match peek2 st with
      (* Trailing ';;' or list separators are handled by callers; here a ';'
         always starts a sequence. *)
      | _ ->
          let loc = loc_of (peek st) in
          advance st;
          let rest = parse_seq st in
          Ast.Seq (first, rest, loc))
  | _ -> first

and parse_nonseq st =
  let l = peek st in
  let loc = loc_of l in
  match l.Lexer.tok with
  | Lexer.LET ->
      advance st;
      let recursive =
        if (peek st).Lexer.tok = Lexer.REC then begin
          advance st;
          true
        end
        else false
      in
      let pat, bound = parse_binding st in
      expect st Lexer.IN "expected 'in' after let binding";
      let body = parse_expr st in
      Ast.Let { recursive; pat; bound; body; loc }
  | Lexer.IF ->
      advance st;
      let c = parse_nonseq st in
      expect st Lexer.THEN "expected 'then'";
      let t = parse_nonseq st in
      expect st Lexer.ELSE "expected 'else'";
      let e = parse_nonseq st in
      Ast.If (c, t, e, loc)
  | Lexer.MATCH ->
      advance st;
      let scrutinee = parse_nonseq st in
      expect st Lexer.WITH "expected 'with' after match scrutinee";
      if (peek st).Lexer.tok = Lexer.BAR then advance st;
      let rec arms acc =
        let pat = parse_match_pattern st in
        expect st Lexer.ARROW "expected '->' in match arm";
        let body = parse_nonseq st in
        let acc = (pat, body) :: acc in
        if (peek st).Lexer.tok = Lexer.BAR then begin
          advance st;
          arms acc
        end
        else List.rev acc
      in
      Ast.Match (scrutinee, arms [], loc)
  | Lexer.FUN ->
      advance st;
      let rec params acc =
        match (peek st).Lexer.tok with
        | Lexer.ARROW ->
            advance st;
            List.rev acc
        | _ -> params (parse_pattern st :: acc)
      in
      let ps = params [] in
      if ps = [] then error st "fun needs at least one parameter";
      let body = parse_nonseq st in
      Ast.Lambda (ps, body, loc)
  | _ -> parse_tuple st

(* let f x y = e  /  let (a, b) = e *)
and parse_binding st =
  let pat = parse_pattern st in
  match (pat, (peek st).Lexer.tok) with
  | Ast.Pvar _, Lexer.EQUAL ->
      advance st;
      (pat, parse_nonseq st)
  | Ast.Pvar (_, floc), _ when (peek st).Lexer.tok <> Lexer.EQUAL ->
      (* function sugar: parameters follow *)
      let rec params acc =
        match (peek st).Lexer.tok with
        | Lexer.EQUAL ->
            advance st;
            List.rev acc
        | _ -> params (parse_pattern st :: acc)
      in
      let ps = params [] in
      if ps = [] then error st "expected '=' in let binding";
      let body = parse_nonseq st in
      (pat, Ast.Lambda (ps, body, floc))
  | _, Lexer.EQUAL ->
      advance st;
      (pat, parse_nonseq st)
  | _ -> error st "expected '=' in let binding"

and parse_tuple st =
  let first = parse_or st in
  match (peek st).Lexer.tok with
  | Lexer.COMMA ->
      let loc = loc_of (peek st) in
      let rec more acc =
        match (peek st).Lexer.tok with
        | Lexer.COMMA ->
            advance st;
            more (parse_or st :: acc)
        | _ -> List.rev acc
      in
      Ast.Tuple (more [ first ], loc)
  | _ -> first

and binop_level op =
  match op with
  | "||" -> Some 1
  | "&&" -> Some 2
  | "=" | "<>" | "<" | ">" | "<=" | ">=" -> Some 3
  | "::" | "@" -> Some 4 (* right associative *)
  | "+" | "-" | "+." | "-." | "^" -> Some 5
  | "*" | "/" | "*." | "/." | "mod" -> Some 6
  | _ -> None

and parse_or st = parse_binop st 1

and parse_binop st level =
  if level > 6 then parse_unary st
  else if level = 4 then begin
    (* right-associative cons/append *)
    let left = parse_binop st 5 in
    match (peek st).Lexer.tok with
    | Lexer.OP op when binop_level op = Some 4 ->
        let loc = loc_of (peek st) in
        advance st;
        let right = parse_binop st 4 in
        Ast.Binop (op, left, right, loc)
    | _ -> left
  end
  else begin
    let left = ref (parse_binop st (level + 1)) in
    let continue = ref true in
    while !continue do
      let tok = (peek st).Lexer.tok in
      let opname =
        match tok with
        | Lexer.OP op -> Some op
        | Lexer.EQUAL -> Some "="
        | Lexer.STAR -> Some "*"
        | Lexer.IDENT "mod" -> Some "mod"
        | _ -> None
      in
      match opname with
      | Some op when binop_level op = Some level ->
          let loc = loc_of (peek st) in
          advance st;
          let right = parse_binop st (level + 1) in
          left := Ast.Binop (op, !left, right, loc)
      | _ -> continue := false
    done;
    !left
  end

and parse_unary st =
  let l = peek st in
  match l.Lexer.tok with
  | Lexer.OP "-" ->
      advance st;
      Ast.Uminus (parse_unary st, loc_of l)
  | Lexer.OP "-." ->
      advance st;
      Ast.Uminus (parse_unary st, loc_of l)
  | _ -> parse_app st

and parse_app st =
  let head = parse_atom st in
  let rec args acc =
    if atom_start (peek st).Lexer.tok then
      let a = parse_atom st in
      args (Ast.App (acc, a, Ast.expr_loc a))
    else acc
  in
  args head

and parse_atom st =
  let l = peek st in
  let loc = loc_of l in
  match l.Lexer.tok with
  | Lexer.INT n ->
      advance st;
      Ast.Const (Ast.Cint n, loc)
  | Lexer.FLOAT f ->
      advance st;
      Ast.Const (Ast.Cfloat f, loc)
  | Lexer.STRING s ->
      advance st;
      Ast.Const (Ast.Cstring s, loc)
  | Lexer.TRUE ->
      advance st;
      Ast.Const (Ast.Cbool true, loc)
  | Lexer.FALSE ->
      advance st;
      Ast.Const (Ast.Cbool false, loc)
  | Lexer.IDENT x ->
      advance st;
      Ast.Var (x, loc)
  | Lexer.LPAREN -> (
      advance st;
      match (peek st).Lexer.tok with
      | Lexer.RPAREN ->
          advance st;
          Ast.Const (Ast.Cunit, loc)
      | _ ->
          let e = parse_expr st in
          expect st Lexer.RPAREN "expected ')'";
          e)
  | Lexer.LBRACKET -> (
      advance st;
      match (peek st).Lexer.tok with
      | Lexer.RBRACKET ->
          advance st;
          Ast.List ([], loc)
      | _ ->
          let first = parse_nonseq st in
          let rec more acc =
            match (peek st).Lexer.tok with
            | Lexer.SEMI ->
                advance st;
                more (parse_nonseq st :: acc)
            | _ -> List.rev acc
          in
          let es = more [ first ] in
          expect st Lexer.RBRACKET "expected ']'";
          Ast.List (es, loc))
  | _ -> error st "expected an expression"

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)

let parse_top st =
  let l = peek st in
  let loc = loc_of l in
  match l.Lexer.tok with
  | Lexer.LET ->
      advance st;
      let recursive =
        if (peek st).Lexer.tok = Lexer.REC then begin
          advance st;
          true
        end
        else false
      in
      let pat, expr = parse_binding st in
      Ast.Tlet { recursive; pat; expr; loc }
  | Lexer.EXTERNAL ->
      advance st;
      let name =
        match (peek st).Lexer.tok with
        | Lexer.IDENT x ->
            advance st;
            x
        | _ -> error st "expected a name after 'external'"
      in
      expect st Lexer.COLON "expected ':' in external declaration";
      let ty = parse_type st in
      Ast.Texternal { name; ty; loc }
  | _ -> error st "expected 'let' or 'external' at top level"

let skip_semisemi st =
  while (peek st).Lexer.tok = Lexer.SEMISEMI do
    advance st
  done

let program src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let rec tops acc =
    skip_semisemi st;
    if (peek st).Lexer.tok = Lexer.EOF then List.rev acc
    else tops (parse_top st :: acc)
  in
  tops []

let expression src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let e = parse_expr st in
  skip_semisemi st;
  if (peek st).Lexer.tok <> Lexer.EOF then error st "trailing input after expression";
  e

let type_expression src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let t = parse_type st in
  if (peek st).Lexer.tok <> Lexer.EOF then error st "trailing input after type";
  t
