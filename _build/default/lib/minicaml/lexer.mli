(** Hand-written lexer for the specification language. *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string  (** lowercase identifiers *)
  | TYVAR of string  (** 'a *)
  | LET
  | REC
  | IN
  | IF
  | THEN
  | ELSE
  | FUN
  | MATCH
  | WITH
  | BAR  (** | *)
  | TRUE
  | FALSE
  | EXTERNAL
  | ARROW  (** -> *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | SEMISEMI
  | COLON
  | EQUAL
  | OP of string  (** infix operators: + - * / +. -. *. /. :: @ < > <= >= <> && || ^ *)
  | STAR  (** '*', doubles as type product and int multiplication *)
  | UNDERSCORE
  | EOF

type located = { tok : token; line : int; col : int }

exception Lex_error of string * Ast.loc

val tokenize : string -> located list
(** Raises [Lex_error] on unexpected characters, unterminated strings or
    comments. OCaml-style [(* ... *)] comments nest. *)

val token_name : token -> string
