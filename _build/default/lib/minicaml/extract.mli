(** Skeleton-instance extraction: from a specification program to the
    skeletal IR (the "Skeleton expansion" input of paper Fig. 2).

    SKiPPER restricts the parallel structure of accepted programs: all
    parallelism must be expressed by composing skeleton instances whose
    functional parameters are external (sequential) functions, and data must
    flow linearly through the stages. Concretely, the extractor accepts a
    [main] of one of two shapes:

    - [let main = itermem inp loop out z x] — the stream form of §4, where
      [inp]/[out] are external names, [z] and [x] evaluate to constants, and
      [loop] is a (possibly named) function whose body is a linear chain
      [let v1 = stage1 ... in let v2 = stage2 ... in stageN ...];
    - [let main = fun x -> <linear chain>] or
      [let main = <linear chain applied to a constant>] — a one-shot
      pipeline.

    Each stage is an application of an external function or of a skeleton
    ([df]/[scm]/[tf]) whose list argument is the current dataflow variable.
    Other arguments must be compile-time constants (evaluated with the
    sequential evaluator, so e.g. [init_state ()] works) or components of
    the loop's input pair. Stage applications are compiled to fresh wrapper
    entries registered in the function table (the glue code SKiPPER
    generates around user C functions), so the resulting IR only references
    unary registered functions. *)

exception Extract_error of string * Ast.loc

type extraction = {
  program : Skel.Ir.program;
  input : Skel.Value.t option;
      (** the program input when the source fixes it (itermem's [x] argument
          or a constant application); [None] when [main] is a function *)
}

val extract :
  ?frames:int -> ?name:string -> Skel.Funtable.t -> Ast.program -> extraction
(** [extract table prog] type-checks nothing by itself — run {!Infer} first —
    but evaluates global bindings with {!Eval} (registering wrapper
    functions into [table] as a side effect) and translates [main].
    [frames] (default 1) is stored in the produced program; [name] defaults
    to ["main"]. Raises [Extract_error] when the program is outside the
    supported skeletal subset, with the offending location. *)
