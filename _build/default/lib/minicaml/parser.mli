(** Recursive-descent parser for the specification language.

    Grammar (a strict Caml subset): top-level [let]/[let rec] bindings with
    [let f x y = ...] sugar, [external name : type] declarations, and an
    expression language with tuples, lists, conditionals, anonymous
    functions, local bindings, sequences and the usual arithmetic /
    comparison / list operators at OCaml's precedences. [;;] separators are
    optional. *)

exception Parse_error of string * Ast.loc

val program : string -> Ast.program
(** Raises [Parse_error] or [Lexer.Lex_error]. *)

val expression : string -> Ast.expr
(** Parses a single expression (for tests and the REPL-style emulator). *)

val type_expression : string -> Ast.type_expr
(** Parses a type as written in external declarations, e.g.
    ["('a -> 'b) -> 'a list -> 'b list"]. *)
