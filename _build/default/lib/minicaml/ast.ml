(* Abstract syntax of the specification language: the Caml subset in which
   SKiPPER programs are written (paper §3-4). Programs are sequences of
   top-level bindings and external declarations; expressions cover the
   functional core needed by skeletal specifications. *)

type loc = { line : int; col : int }

let noloc = { line = 0; col = 0 }
let pp_loc ppf l = Format.fprintf ppf "line %d, column %d" l.line l.col

type constant =
  | Cunit
  | Cbool of bool
  | Cint of int
  | Cfloat of float
  | Cstring of string

type pattern =
  | Pvar of string * loc
  | Pwild of loc
  | Punit of loc
  | Ptuple of pattern list * loc
  | Pconst of constant * loc  (** literal patterns, match arms only *)
  | Pnil of loc  (** [] *)
  | Pcons of pattern * pattern * loc  (** x :: xs *)

type expr =
  | Const of constant * loc
  | Var of string * loc
  | Tuple of expr list * loc
  | List of expr list * loc
  | App of expr * expr * loc
  | Lambda of pattern list * expr * loc
  | Let of { recursive : bool; pat : pattern; bound : expr; body : expr; loc : loc }
  | If of expr * expr * expr * loc
  | Binop of string * expr * expr * loc
  | Uminus of expr * loc
  | Seq of expr * expr * loc  (** e1; e2 *)
  | Match of expr * (pattern * expr) list * loc

(* Type expressions as written in external declarations. *)
type type_expr =
  | Tname of string * type_expr list * loc  (** e.g. [int], ['a list] *)
  | Tvar_expr of string * loc  (** 'a *)
  | Tarrow_expr of type_expr * type_expr * loc
  | Ttuple_expr of type_expr list * loc

type top =
  | Tlet of { recursive : bool; pat : pattern; expr : expr; loc : loc }
  | Texternal of { name : string; ty : type_expr; loc : loc }

type program = top list

let expr_loc = function
  | Const (_, l)
  | Var (_, l)
  | Tuple (_, l)
  | List (_, l)
  | App (_, _, l)
  | Lambda (_, _, l)
  | If (_, _, _, l)
  | Binop (_, _, _, l)
  | Uminus (_, l)
  | Seq (_, _, l)
  | Match (_, _, l) ->
      l
  | Let { loc; _ } -> loc

let pattern_loc = function
  | Pvar (_, l) | Pwild l | Punit l | Ptuple (_, l) | Pconst (_, l) | Pnil l
  | Pcons (_, _, l) ->
      l

let rec pattern_vars = function
  | Pvar (x, _) -> [ x ]
  | Pwild _ | Punit _ | Pconst _ | Pnil _ -> []
  | Ptuple (ps, _) -> List.concat_map pattern_vars ps
  | Pcons (hd, tl, _) -> pattern_vars hd @ pattern_vars tl

(* Floats must re-lex as floats: %g would print 5.0 as "5" (an integer
   literal) and 1e20 without a dot, which the lexer rejects. *)
let float_literal f =
  let s = Printf.sprintf "%.12g" f in
  if String.contains s '.' then s
  else
    match String.index_opt s 'e' with
    | Some i -> String.sub s 0 i ^ ".0" ^ String.sub s i (String.length s - i)
    | None -> s ^ ".0"

let pp_constant ppf = function
  | Cunit -> Format.pp_print_string ppf "()"
  | Cbool b -> Format.pp_print_bool ppf b
  | Cint n -> Format.pp_print_int ppf n
  | Cfloat f -> Format.pp_print_string ppf (float_literal f)
  | Cstring s -> Format.fprintf ppf "%S" s

let rec pp_pattern ppf = function
  | Pvar (x, _) -> Format.pp_print_string ppf x
  | Pwild _ -> Format.pp_print_string ppf "_"
  | Punit _ -> Format.pp_print_string ppf "()"
  | Ptuple (ps, _) ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_pattern)
        ps
  | Pconst (c, _) -> pp_constant ppf c
  | Pnil _ -> Format.pp_print_string ppf "[]"
  | Pcons (hd, tl, _) -> Format.fprintf ppf "(%a :: %a)" pp_pattern hd pp_pattern tl

let rec pp_expr ppf = function
  | Const (c, _) -> pp_constant ppf c
  | Var (x, _) -> Format.pp_print_string ppf x
  | Tuple (es, _) ->
      Format.fprintf ppf "(@[%a@])"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_expr)
        es
  | List (es, _) ->
      Format.fprintf ppf "[@[%a@]]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_expr)
        es
  | App (f, a, _) -> Format.fprintf ppf "(@[%a@ %a@])" pp_expr f pp_expr a
  | Lambda (ps, body, _) ->
      Format.fprintf ppf "(@[fun %a ->@ %a@])"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_pattern)
        ps pp_expr body
  | Let { recursive; pat; bound; body; _ } ->
      Format.fprintf ppf "(@[<v>let %s%a = %a in@ %a@])"
        (if recursive then "rec " else "")
        pp_pattern pat pp_expr bound pp_expr body
  | If (c, t, e, _) ->
      Format.fprintf ppf "(@[if %a@ then %a@ else %a@])" pp_expr c pp_expr t pp_expr e
  | Binop (op, a, b, _) -> Format.fprintf ppf "(@[%a %s %a@])" pp_expr a op pp_expr b
  | Uminus (e, _) -> Format.fprintf ppf "(- %a)" pp_expr e
  | Seq (a, b, _) -> Format.fprintf ppf "(@[%a;@ %a@])" pp_expr a pp_expr b
  | Match (scrutinee, arms, _) ->
      let pp_arm ppf (p, e) =
        Format.fprintf ppf "| %a -> %a" pp_pattern p pp_expr e
      in
      Format.fprintf ppf "(@[<v>match %a with@ %a@])" pp_expr scrutinee
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_arm)
        arms

let rec pp_type_expr ppf = function
  | Tname (n, [], _) -> Format.pp_print_string ppf n
  | Tname (n, [ arg ], _) -> Format.fprintf ppf "%a %s" pp_type_expr arg n
  | Tname (n, args, _) ->
      Format.fprintf ppf "(%a) %s"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_type_expr)
        args n
  | Tvar_expr (v, _) -> Format.fprintf ppf "'%s" v
  | Tarrow_expr (a, b, _) -> Format.fprintf ppf "(%a -> %a)" pp_type_expr a pp_type_expr b
  | Ttuple_expr (ts, _) ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " * ") pp_type_expr)
        ts

let pp_top ppf = function
  | Tlet { recursive; pat; expr; _ } ->
      Format.fprintf ppf "@[<2>let %s%a =@ %a@]"
        (if recursive then "rec " else "")
        pp_pattern pat pp_expr expr
  | Texternal { name; ty; _ } ->
      Format.fprintf ppf "@[<2>external %s :@ %a@]" name pp_type_expr ty

let pp_program ppf prog =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@.@.") pp_top ppf prog

(* Structural equality modulo source locations, for printer/parser
   round-trip testing. *)
let rec equal_pattern a b =
  match (a, b) with
  | Pvar (x, _), Pvar (y, _) -> String.equal x y
  | Pwild _, Pwild _ | Punit _, Punit _ | Pnil _, Pnil _ -> true
  | Pconst (c, _), Pconst (d, _) -> c = d
  | Ptuple (ps, _), Ptuple (qs, _) ->
      List.length ps = List.length qs && List.for_all2 equal_pattern ps qs
  | Pcons (h1, t1, _), Pcons (h2, t2, _) -> equal_pattern h1 h2 && equal_pattern t1 t2
  | ( (Pvar _ | Pwild _ | Punit _ | Pnil _ | Pconst _ | Ptuple _ | Pcons _), _ ) ->
      false

let rec equal_expr a b =
  match (a, b) with
  | Const (c, _), Const (d, _) -> c = d
  | Var (x, _), Var (y, _) -> String.equal x y
  | Tuple (xs, _), Tuple (ys, _) | List (xs, _), List (ys, _) ->
      List.length xs = List.length ys && List.for_all2 equal_expr xs ys
  | App (f1, a1, _), App (f2, a2, _) -> equal_expr f1 f2 && equal_expr a1 a2
  | Lambda (ps1, b1, _), Lambda (ps2, b2, _) ->
      List.length ps1 = List.length ps2
      && List.for_all2 equal_pattern ps1 ps2
      && equal_expr b1 b2
  | Let l1, Let l2 ->
      l1.recursive = l2.recursive && equal_pattern l1.pat l2.pat
      && equal_expr l1.bound l2.bound && equal_expr l1.body l2.body
  | If (c1, t1, e1, _), If (c2, t2, e2, _) ->
      equal_expr c1 c2 && equal_expr t1 t2 && equal_expr e1 e2
  | Binop (o1, a1, b1, _), Binop (o2, a2, b2, _) ->
      String.equal o1 o2 && equal_expr a1 a2 && equal_expr b1 b2
  | Uminus (e1, _), Uminus (e2, _) -> equal_expr e1 e2
  | Seq (a1, b1, _), Seq (a2, b2, _) -> equal_expr a1 a2 && equal_expr b1 b2
  | Match (s1, arms1, _), Match (s2, arms2, _) ->
      equal_expr s1 s2
      && List.length arms1 = List.length arms2
      && List.for_all2
           (fun (p1, e1) (p2, e2) -> equal_pattern p1 p2 && equal_expr e1 e2)
           arms1 arms2
  | ( (Const _ | Var _ | Tuple _ | List _ | App _ | Lambda _ | Let _ | If _
      | Binop _ | Uminus _ | Seq _ | Match _),
      _ ) ->
      false
