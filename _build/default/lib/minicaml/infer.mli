(** Polymorphic type inference for specification programs (Algorithm W with
    levels).

    The initial environment contains the four skeleton signatures exactly as
    published in the paper (§2 for [df], Fig. 4 for [itermem]):

    {v
    df      : int -> ('a -> 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c
    scm     : int -> (int -> 'a -> 'b list) -> ('b -> 'c) -> ('c list -> 'd)
              -> 'a -> 'd
    tf      : int -> ('a -> 'a list * 'b) -> ('c -> 'b -> 'c) -> 'c
              -> 'a list -> 'c
    itermem : ('a -> 'b) -> ('c * 'b -> 'c * 'd) -> ('d -> unit) -> 'c
              -> 'a -> unit
    v}

    plus arithmetic/comparison/list operators and a few list builtins
    ([map], [fold_left], [length], [rev]). [external] declarations extend
    the environment with their declared schemes. *)

exception Type_error of string * Ast.loc

type env

val initial_env : env
val lookup : env -> string -> Types.scheme option
val bindings : env -> (string * Types.scheme) list

val infer_expr : env -> Ast.expr -> Types.ty
(** Raises [Type_error] with a located message on unbound variables or
    unification failures. *)

val infer_program : env -> Ast.program -> env * (string * Types.scheme) list
(** Processes top-level bindings in order; returns the final environment and
    the schemes of the names bound (externals included), in order. *)

val skeleton_names : string list
(** [["scm"; "df"; "tf"; "itermem"]]. *)
