(** Read-eval-print sessions over the specification language.

    The paper's workflow has the programmer exercise the functional
    specification interactively on a workstation before targeting the
    parallel machine; this module provides that loop: each input line (or
    [;;]-terminated chunk) is parsed as a top-level binding, an external
    declaration or an expression, type-checked incrementally against the
    session environment, evaluated with the sequential evaluator, and
    echoed OCaml-toplevel style ([val x : int = 42]).

    The functional API is side-effect free on errors (a failed line leaves
    the session unchanged), so the loop is robust and testable. *)

type session

val create : ?frames:int -> Skel.Funtable.t -> session
(** A fresh session over a function table (externals the source may
    declare). [frames] bounds itermem runs (default 1). *)

type outcome = {
  session : session;  (** updated (or unchanged on error) session *)
  message : string;  (** what the toplevel prints for this input *)
  ok : bool;
}

val eval_input : session -> string -> outcome
(** Evaluates one input. Accepted forms: [let ...], [let rec ...],
    [external name : type], or a bare expression (bound to [it]).
    All front-end errors are caught and rendered into [message]. *)

val banner : string

val run_channel : ?prompt:bool -> Skel.Funtable.t -> in_channel -> out_channel -> unit
(** Drives a [;;]- or newline-delimited REPL over channels until EOF (the
    entry point used by [skipperc repl]). *)
