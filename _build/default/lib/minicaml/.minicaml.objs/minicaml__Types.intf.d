lib/minicaml/types.mli: Ast
