lib/minicaml/repl.ml: Ast Eval Format In_channel Infer Lexer List Parser Printf String Types
