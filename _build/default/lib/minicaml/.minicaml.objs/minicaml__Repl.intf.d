lib/minicaml/repl.mli: Skel
