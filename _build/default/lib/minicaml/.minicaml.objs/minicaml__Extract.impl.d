lib/minicaml/extract.ml: Ast Eval Format List Printf Skel
