lib/minicaml/eval.ml: Ast Format List Map Option Printf Skel String
