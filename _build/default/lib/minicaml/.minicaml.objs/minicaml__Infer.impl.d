lib/minicaml/infer.ml: Ast List Map Parser Printf String Types
