lib/minicaml/parser.mli: Ast
