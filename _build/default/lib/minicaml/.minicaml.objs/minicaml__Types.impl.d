lib/minicaml/types.ml: Ast Char Hashtbl List Printf String
