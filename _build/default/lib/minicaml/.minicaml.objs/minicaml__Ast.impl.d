lib/minicaml/ast.ml: Format List Printf String
