lib/minicaml/lexer.mli: Ast
