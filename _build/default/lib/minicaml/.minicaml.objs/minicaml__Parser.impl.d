lib/minicaml/parser.ml: Array Ast Lexer List Printf
