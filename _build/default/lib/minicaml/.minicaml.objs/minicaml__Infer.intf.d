lib/minicaml/infer.mli: Ast Types
