lib/minicaml/eval.mli: Ast Format Skel
