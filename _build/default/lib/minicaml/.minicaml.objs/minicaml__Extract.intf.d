lib/minicaml/extract.mli: Ast Skel
