lib/minicaml/lexer.ml: Ast Buffer List Printf String
