type session = {
  tenv : Infer.env;
  venv : Eval.env;
  ctx : Eval.ctx;
  counter : int;  (** type-variable naming reset ticker *)
}

type outcome = { session : session; message : string; ok : bool }

let create ?(frames = 1) table =
  let ctx = Eval.make_ctx ~frames table in
  {
    tenv = Infer.initial_env;
    venv = Eval.initial_env ctx;
    ctx;
    counter = 0;
  }

let banner =
  "        SKiPPER specification toplevel\n\
  \        (skeletons df, scm, tf, itermem in scope; #quit or Ctrl-D to leave)\n"

(* Render a runtime value, falling back for closures. *)
let render_value v =
  match v with
  | Eval.Vclos _ | Eval.Vbuiltin _ -> "<fun>"
  | v -> Format.asprintf "%a" Eval.pp_value v

let eval_input session input =
  let fail message = { session; message; ok = false } in
  Types.reset_counter ();
  match Parser.program input with
  | exception Parser.Parse_error (msg, loc) ->
      (* Maybe it is a bare expression rather than a top-level binding. *)
      (match Parser.expression input with
      | expr -> (
          match Infer.infer_expr session.tenv expr with
          | ty -> (
              match Eval.eval_expr session.ctx session.venv expr with
              | v ->
                  {
                    session;
                    message =
                      Printf.sprintf "- : %s = %s" (Types.to_string ty) (render_value v);
                    ok = true;
                  }
              | exception Eval.Runtime_error m -> fail ("Runtime error: " ^ m))
          | exception Infer.Type_error (m, l) ->
              fail (Printf.sprintf "Type error: %s (at %s)" m (Format.asprintf "%a" Ast.pp_loc l)))
      | exception _ ->
          fail (Printf.sprintf "Parse error: %s (at %s)" msg (Format.asprintf "%a" Ast.pp_loc loc)))
  | exception Lexer.Lex_error (msg, loc) ->
      fail (Printf.sprintf "Lexical error: %s (at %s)" msg (Format.asprintf "%a" Ast.pp_loc loc))
  | [] -> { session; message = ""; ok = true }
  | tops -> (
      match Infer.infer_program session.tenv tops with
      | exception Infer.Type_error (m, l) ->
          fail (Printf.sprintf "Type error: %s (at %s)" m (Format.asprintf "%a" Ast.pp_loc l))
      | tenv', schemes -> (
          match Eval.eval_program_env session.ctx session.venv tops with
          | exception Eval.Runtime_error m -> fail ("Runtime error: " ^ m)
          | venv' ->
              let lines =
                List.map
                  (fun (name, scheme) ->
                    let shown =
                      match Eval.lookup venv' name with
                      | Some v -> render_value v
                      | None -> "<extern>"
                    in
                    Printf.sprintf "val %s : %s = %s" name
                      (Types.scheme_to_string scheme) shown)
                  schemes
              in
              {
                session = { session with tenv = tenv'; venv = venv' };
                message = String.concat "\n" lines;
                ok = true;
              }))

let run_channel ?(prompt = true) table ic oc =
  output_string oc banner;
  let session = ref (create table) in
  let rec loop () =
    if prompt then begin
      output_string oc "# ";
      flush oc
    end;
    match In_channel.input_line ic with
    | None -> output_string oc "\n"
    | Some line when String.trim line = "#quit" -> output_string oc "\n"
    | Some line ->
        let line =
          match String.index_opt line ';' with
          | Some i when i + 1 < String.length line && line.[i + 1] = ';' ->
              String.sub line 0 i
          | _ -> line
        in
        if String.trim line <> "" then begin
          let outcome = eval_input !session line in
          session := outcome.session;
          if outcome.message <> "" then begin
            output_string oc outcome.message;
            output_string oc "\n"
          end
        end;
        flush oc;
        loop ()
  in
  loop ()
