(** The adequation heuristic: list scheduling with earliest finish time.

    This fills the pipeline slot the paper delegates to SynDEx: a static
    distribution of the process graph onto the processor graph, minimising
    the predicted latency of one stream iteration. The algorithm is
    HEFT-style — operations are prioritised by upward rank (critical-path
    distance to the sinks, including mean communication costs) and each is
    placed on the processor minimising its earliest finish time, respecting
    the colocation constraints of split control operations.

    Predicted times are estimates over the {!Cost} model; actual latencies
    come from executing the mapped executive on the machine simulator. *)

val map : Cost.t -> Archi.t -> Procnet.Graph.t -> Schedule.t
(** Raises [Failure] when the graph's scheduling DAG is cyclic. *)

val upward_ranks : Cost.t -> Archi.t -> Dag.t -> float array
(** Exposed for tests: rank per op id. *)
