type part = Whole | Dispatch | Collect | Emit | Store

type op = { op_id : int; node : int; part : part; cycles : float }

type dep = {
  src_op : int;
  dst_op : int;
  bytes : int;
  edge : Procnet.Graph.edge option;
}

type t = {
  graph : Procnet.Graph.t;
  ops : op array;
  deps : dep list;
  preds : dep list array;
  succs : dep list array;
  colocated : (int * int) list;
  ops_of_node : int list array;
}

let part_name = function
  | Whole -> "whole"
  | Dispatch -> "dispatch"
  | Collect -> "collect"
  | Emit -> "emit"
  | Store -> "store"

let of_graph (cost : Cost.t) g =
  let module G = Procnet.Graph in
  let nnodes = G.nnodes g in
  let ops = ref [] and next = ref 0 in
  let colocated = ref [] in
  let ops_of_node = Array.make nnodes [] in
  let add node part cycles =
    let op_id = !next in
    incr next;
    ops := { op_id; node; part; cycles } :: !ops;
    ops_of_node.(node) <- ops_of_node.(node) @ [ op_id ];
    op_id
  in
  (* in_op.(n) receives node n's ordinary input; out_op.(n) produces its
     output; extra maps handle the split ports. *)
  let in_op = Array.make nnodes (-1) and out_op = Array.make nnodes (-1) in
  let collect_op = Array.make nnodes (-1) and store_op = Array.make nnodes (-1) in
  let implicit_deps = ref [] in
  Array.iter
    (fun (node : G.node) ->
      let c = cost.Cost.node_cycles node in
      match node.kind with
      | G.DfMaster _ | G.TfMaster _ ->
          let d = add node.id Dispatch (c /. 2.0) in
          let col = add node.id Collect (c /. 2.0) in
          in_op.(node.id) <- d;
          out_op.(node.id) <- col;
          collect_op.(node.id) <- col;
          colocated := (d, col) :: !colocated;
          implicit_deps := { src_op = d; dst_op = col; bytes = 0; edge = None } :: !implicit_deps
      | G.Mem _ ->
          let e = add node.id Emit (c /. 2.0) in
          let s = add node.id Store (c /. 2.0) in
          (* Emit is a source this iteration; Store a sink. *)
          in_op.(node.id) <- s;
          out_op.(node.id) <- e;
          store_op.(node.id) <- s;
          colocated := (e, s) :: !colocated
      | G.Input _ | G.Output _ | G.Compute _ | G.ScmCompute _ | G.ScmSplit _
      | G.ScmMerge _ | G.DfWorker _ | G.TfWorker _ | G.Join | G.Fork | G.Router _ ->
          let w = add node.id Whole c in
          in_op.(node.id) <- w;
          out_op.(node.id) <- w)
    (G.nodes g);
  let deps =
    List.filter_map
      (fun (e : G.edge) ->
        let src =
          match (G.node g e.src).kind with
          | G.DfMaster _ | G.TfMaster _ when e.src_port = "task" -> in_op.(e.src)
          | _ -> out_op.(e.src)
        in
        let dst =
          match (G.node g e.dst).kind with
          | G.DfMaster _ | G.TfMaster _
            when e.dst_port = "result" || e.dst_port = "packet" ->
              collect_op.(e.dst)
          | G.Mem _ when e.dst_port = "update" -> store_op.(e.dst)
          | _ -> in_op.(e.dst)
        in
        Some { src_op = src; dst_op = dst; bytes = cost.Cost.edge_bytes e; edge = Some e })
      (G.edges g)
    @ !implicit_deps
  in
  let nops = !next in
  let ops = Array.of_list (List.rev !ops) in
  let preds = Array.make nops [] and succs = Array.make nops [] in
  List.iter
    (fun d ->
      preds.(d.dst_op) <- d :: preds.(d.dst_op);
      succs.(d.src_op) <- d :: succs.(d.src_op))
    deps;
  let t = { graph = g; ops; deps; preds; succs; colocated = !colocated; ops_of_node } in
  (* Verify acyclicity (Kahn). *)
  let indeg = Array.map List.length preds in
  let q = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i q) indeg;
  let seen = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    incr seen;
    List.iter
      (fun d ->
        indeg.(d.dst_op) <- indeg.(d.dst_op) - 1;
        if indeg.(d.dst_op) = 0 then Queue.add d.dst_op q)
      succs.(u)
  done;
  if !seen <> nops then failwith "Dag.of_graph: scheduling graph is cyclic";
  t

let topological_order t =
  let indeg = Array.map List.length t.preds in
  let q = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i q) indeg;
  let order = ref [] in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order := u :: !order;
    List.iter
      (fun (d : dep) ->
        indeg.(d.dst_op) <- indeg.(d.dst_op) - 1;
        if indeg.(d.dst_op) = 0 then Queue.add d.dst_op q)
      t.succs.(u)
  done;
  List.rev !order
