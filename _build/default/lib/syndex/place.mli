(** Fixed placement strategies and schedule derivation.

    Besides the {!Heft} heuristic, the environment offers the placements a
    SKiPPER programmer would draw by hand — the "canonical" layout of the
    paper's Fig. 1 (control processes with the master on P0, workers spread
    over the remaining processors) and a plain round-robin. [of_placement]
    turns any placement into a full static schedule so the strategies can be
    compared on predicted latency (the mapping-ablation experiment). *)

val canonical : Procnet.Graph.t -> Archi.t -> int array
(** Control processes (masters, split/merge, mem, join, fork, input/output)
    on processor 0; worker and compute processes round-robin starting from
    processor 1 and wrapping around the whole machine (the paper's Fig. 1
    layout: master on P0, worker i on P(i+1)). *)

val round_robin : Procnet.Graph.t -> Archi.t -> int array
(** Node [i] on processor [i mod P]. *)

val of_placement : Cost.t -> Archi.t -> Procnet.Graph.t -> int array -> Schedule.t
(** List-schedules the graph's operations in topological order on the given
    fixed placement, yielding predicted op times, communications and
    makespan. Raises [Invalid_argument] when the placement array has the
    wrong length or names a missing processor. *)
