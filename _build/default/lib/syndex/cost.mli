(** Cost model for static mapping.

    SynDEx's "adequation" needs per-operation worst/mean execution times and
    per-dependency data sizes. Dynamic skeletons make exact values
    data-dependent, so the mapper works from estimates: a table of mean
    cycles per sequential function and mean bytes per channel, both
    overridable per call site. The machine simulator then charges *actual*
    costs at run time; the scheduler only needs estimates good enough for
    placement decisions. *)

type t = {
  node_cycles : Procnet.Graph.node -> float;
      (** mean cycles per activation of a process *)
  edge_bytes : Procnet.Graph.edge -> int;
      (** mean payload bytes per message on a channel *)
}

val make :
  ?fn_cycles:(string -> float option) ->
  ?control_cycles:float ->
  ?default_fn_cycles:float ->
  ?edge_bytes:(Procnet.Graph.edge -> int option) ->
  ?default_edge_bytes:int ->
  unit ->
  t
(** [make ()] builds a model. [fn_cycles name] may return a per-function
    estimate (consulted for every node kind that carries a function name:
    compute, workers, split/merge, masters' fold, input/output).
    Control-only processes (join, fork, mem, routers) cost [control_cycles]
    (default 500). Unestimated functions cost [default_fn_cycles]
    (default 10000). [edge_bytes] likewise overrides the per-channel size
    (default 1024 bytes). *)

val of_table : Skel.Funtable.t -> sample:(string -> Skel.Value.t option) -> t
(** Derives function costs by evaluating each registered function's cost
    model on a sample argument ([sample name]); functions without a sample
    fall back to defaults. *)

val node_function : Procnet.Graph.node -> string option
(** The sequential function a process applies, if any (masters report their
    fold function). *)
