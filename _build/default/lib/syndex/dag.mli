(** The scheduling DAG derived from a process network.

    Process networks contain cycles (the df master/worker round trip, the
    itermem memory feedback). For static mapping these are broken the way
    SynDEx treats multi-phase operations: stateful control processes are
    split into two schedulable operations —

    - a [DfMaster]/[TfMaster] becomes a [Dispatch] op (sending tasks) and a
      [Collect] op (folding results);
    - a [Mem] becomes [Emit] (producing the frame's state) and [Store]
      (receiving the updated state for the next frame);
    - every other process is a single [Whole] op.

    Split halves carry a colocation constraint (they are the same process at
    run time, so they must live on one processor). The resulting graph is
    acyclic and covers exactly one stream iteration. *)

type part = Whole | Dispatch | Collect | Emit | Store

type op = {
  op_id : int;
  node : int;  (** originating process-network node *)
  part : part;
  cycles : float;
}

type dep = {
  src_op : int;
  dst_op : int;
  bytes : int;
  edge : Procnet.Graph.edge option;
      (** the originating channel; [None] for the implicit dispatch->collect
          ordering constraint inside a master *)
}

type t = {
  graph : Procnet.Graph.t;
  ops : op array;
  deps : dep list;
  preds : dep list array;  (** indexed by op id *)
  succs : dep list array;
  colocated : (int * int) list;  (** op pairs that must share a processor *)
  ops_of_node : int list array;  (** node id -> op ids *)
}

val of_graph : Cost.t -> Procnet.Graph.t -> t
(** Raises [Failure] if the derived graph still has a cycle (which would
    indicate an unsupported process-network shape). *)

val topological_order : t -> int list
val part_name : part -> string
