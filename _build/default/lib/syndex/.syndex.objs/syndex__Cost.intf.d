lib/syndex/cost.mli: Procnet Skel
