lib/syndex/place.mli: Archi Cost Procnet Schedule
