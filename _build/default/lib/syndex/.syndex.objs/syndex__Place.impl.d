lib/syndex/place.ml: Archi Array Dag Float Hashtbl List Option Procnet Schedule Support
