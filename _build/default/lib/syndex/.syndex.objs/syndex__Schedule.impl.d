lib/syndex/schedule.ml: Archi Array Buffer Bytes Dag Format Hashtbl List Option Printf Procnet
