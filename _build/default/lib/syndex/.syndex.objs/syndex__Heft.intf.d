lib/syndex/heft.mli: Archi Cost Dag Procnet Schedule
