lib/syndex/heft.ml: Archi Array Dag Float Fun List Place Procnet
