lib/syndex/dag.ml: Array Cost List Procnet Queue
