lib/syndex/cost.ml: Procnet Skel
