lib/syndex/schedule.mli: Archi Dag Format Procnet
