lib/syndex/dag.mli: Cost Procnet
