(** Road following by white-line detection (paper ref [6], Ginhac's thesis).

    Stream application: each frame of a synthetic forward-looking road view
    is scanned for the bright lane lines. The image is split into horizontal
    strips ([scm]); each strip reports the detected line abscissas per row;
    the merge stage fits a linear lane model (least squares over the centre
    line points) whose parameters are both displayed and fed back as the
    [itermem] state to seed the next frame's search window. *)

type lane = {
  offset : float;  (** centre-line abscissa at the bottom row, pixels *)
  slope : float;  (** pixels of drift per image row *)
  confidence : float;  (** fraction of rows where a line point was found *)
}

val lane_to_value : lane -> Skel.Value.t
val lane_of_value : Skel.Value.t -> lane
val initial_lane : width:int -> lane

val detect_rows :
  ?threshold:int -> Vision.Image.t -> y0:int -> (int * float) list
(** [(absolute_row, centre_x)] for rows where a plausible centre-line point
    was found in a strip whose first row is [y0]. *)

val fit : width:int -> height:int -> (int * float) list -> lane
(** Least-squares line fit through the points; falls back to the image
    centre with zero confidence when fewer than 2 points exist. *)

val register : ?nstrips:int -> width:int -> height:int -> Skel.Funtable.t -> unit
(** Registers [road_input], [road_split], [road_strip], [road_fit] (the scm
    merge that also pairs the lane with the state) and [road_output]. *)

val ir : ?frames:int -> nstrips:int -> unit -> Skel.Ir.program
val input_value : width:int -> height:int -> Skel.Value.t
