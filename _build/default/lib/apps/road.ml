module V = Skel.Value

type lane = { offset : float; slope : float; confidence : float }

let lane_to_value l =
  V.Record
    [
      ("offset", V.Float l.offset);
      ("slope", V.Float l.slope);
      ("confidence", V.Float l.confidence);
    ]

let lane_of_value v =
  {
    offset = V.to_float (V.field "offset" v);
    slope = V.to_float (V.field "slope" v);
    confidence = V.to_float (V.field "confidence" v);
  }

let initial_lane ~width =
  { offset = float_of_int width /. 2.0; slope = 0.0; confidence = 0.0 }

let line_threshold = 230
let search_half_width = 48

(* Expected centre-line abscissa at absolute row [y], per the lane model
   parameterised from the bottom of the image. *)
let expected_x lane ~height y =
  lane.offset +. (lane.slope *. float_of_int (height - 1 - y))

let detect_rows ?(threshold = line_threshold) strip ~y0 =
  (* The lane hint is applied by the caller restricting the strip; here we
     take the centroid of bright pixels per row. *)
  let w = Vision.Image.width strip and h = Vision.Image.height strip in
  let points = ref [] in
  for row = 0 to h - 1 do
    let sum = ref 0 and count = ref 0 in
    for x = 0 to w - 1 do
      if Vision.Image.get strip x row >= threshold then begin
        sum := !sum + x;
        incr count
      end
    done;
    if !count > 0 then
      points := (y0 + row, float_of_int !sum /. float_of_int !count) :: !points
  done;
  List.rev !points

let fit ~width ~height points =
  let n = List.length points in
  if n < 2 then { offset = float_of_int width /. 2.0; slope = 0.0; confidence = 0.0 }
  else begin
    (* least squares of x over t = height - 1 - y *)
    let fn = float_of_int n in
    let sums =
      List.fold_left
        (fun (st, sx, stt, stx) (y, x) ->
          let t = float_of_int (height - 1 - y) in
          (st +. t, sx +. x, stt +. (t *. t), stx +. (t *. x)))
        (0.0, 0.0, 0.0, 0.0) points
    in
    let st, sx, stt, stx = sums in
    let denom = (fn *. stt) -. (st *. st) in
    let slope = if abs_float denom < 1e-9 then 0.0 else ((fn *. stx) -. (st *. sx)) /. denom in
    let offset = (sx -. (slope *. st)) /. fn in
    let considered = float_of_int (height - (height / 3)) in
    { offset; slope; confidence = fn /. considered }
  end

let horizon height = height / 3

let register ?(nstrips = 8) ~width ~height table =
  ignore nstrips;
  let reg = Skel.Funtable.register table in
  reg "road_input" ~arity:2
    ~cost:(fun _ -> 10_000.0 +. (1.0 *. float_of_int (width * height)))
    (fun v ->
      match v with
      | V.Tuple [ _; V.Int i ] -> V.Image (Vision.Scene.road_frame ~width ~height i)
      | _ -> raise (V.Type_error "road_input expects (dims, frame)"));
  reg "road_split" ~arity:2
    ~cost:(fun _ -> 2000.0 +. (0.5 *. float_of_int (width * (height - horizon height))))
    (fun v ->
      match v with
      | V.Tuple [ V.Int nparts; V.Tuple [ lane_v; V.Image img ] ] ->
          let h0 = horizon height in
          let lane = lane_of_value lane_v in
          let rows = height - h0 in
          let base = rows / nparts and extra = rows mod nparts in
          let items = ref [] in
          let y = ref h0 in
          for i = 0 to nparts - 1 do
            let nrows = base + if i < extra then 1 else 0 in
            let nrows = max 1 nrows in
            let y0 = min !y (height - 1) in
            let strip_rows = min nrows (height - y0) in
            (* Restrict each strip laterally around the predicted centre
               line when the previous fit was confident. *)
            let x0, x1 =
              if lane.confidence > 0.3 then begin
                let xm = int_of_float (expected_x lane ~height (y0 + (strip_rows / 2))) in
                (max 0 (xm - search_half_width), min width (xm + search_half_width))
              end
              else (0, width)
            in
            let strip =
              Vision.Image.sub img ~x:x0 ~y:y0 ~w:(max 1 (x1 - x0)) ~h:strip_rows
            in
            items :=
              V.Record
                [ ("y0", V.Int y0); ("x0", V.Int x0); ("img", V.Image strip) ]
              :: !items;
            y := !y + nrows
          done;
          V.List (List.rev !items)
      | _ -> raise (V.Type_error "road_split expects (nparts, (lane, image))"));
  reg "road_strip" ~arity:1
    ~cost:(fun v ->
      match v with
      | V.Record _ -> (
          match V.field "img" v with
          | V.Image img -> 2000.0 +. (8.0 *. float_of_int (Vision.Image.size img))
          | _ -> 2000.0)
      | _ -> 2000.0)
    (fun v ->
      let y0 = V.to_int (V.field "y0" v) in
      let x0 = V.to_int (V.field "x0" v) in
      let strip = V.to_image (V.field "img" v) in
      let points = detect_rows strip ~y0 in
      V.Record
        [
          ( "points",
            V.List
              (List.map
                 (fun (y, x) -> V.Tuple [ V.Int y; V.Float (x +. float_of_int x0) ])
                 points) );
        ])
  ;
  reg "road_fit" ~arity:1
    ~cost:(fun v ->
      match v with
      | V.List parts ->
          let n =
            List.fold_left
              (fun acc p -> acc + List.length (V.to_list (V.field "points" p)))
              0 parts
          in
          3000.0 +. (200.0 *. float_of_int n)
      | _ -> 3000.0)
    (fun v ->
      let points =
        List.concat_map
          (fun p ->
            List.map
              (fun pt ->
                match pt with
                | V.Tuple [ V.Int y; V.Float x ] -> (y, x)
                | _ -> raise (V.Type_error "road_fit: bad point"))
              (V.to_list (V.field "points" p)))
          (V.to_list v)
      in
      let lane = fit ~width ~height points in
      let lv = lane_to_value lane in
      V.Tuple [ lv; lv ]);
  reg "road_output" ~arity:1 ~cost:(fun _ -> 1000.0) (fun v -> v)

let ir ?(frames = 1) ~nstrips () =
  Skel.Ir.program ~frames "road-following"
    (Skel.Ir.Itermem
       {
         input = "road_input";
         loop =
           Skel.Ir.Scm
             { nparts = nstrips; split = "road_split"; compute = "road_strip";
               merge = "road_fit" };
         output = "road_output";
         init = lane_to_value { offset = 0.0; slope = 0.0; confidence = 0.0 };
       })

let input_value ~width ~height = V.Tuple [ V.Int width; V.Int height ]
