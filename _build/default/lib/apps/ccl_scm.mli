(** Connected-component labelling with the scm skeleton.

    The companion application of Ginhac et al. (MVA'98, paper ref [7]):
    the image is split into horizontal bands, each band is labelled
    independently (the "geometric" data parallelism scm encapsulates), and
    the merge stage joins components that touch across band seams.

    Band labellings travel between processes as packed binary strings
    (4 bytes per pixel), so communication costs reflect the real data
    volume. *)

val encode_labelling : Vision.Ccl.labelling -> Skel.Value.t
val decode_labelling : Skel.Value.t -> Vision.Ccl.labelling
(** Raises [Skel.Value.Type_error] on malformed encodings. *)

val register :
  ?threshold:int -> ?label_cycles_per_px:float -> Skel.Funtable.t -> unit
(** Registers [ccl_split] (arity 2: nparts, image), [ccl_band] (labels one
    band item) and [ccl_merge] (joins band labellings and summarises
    regions). *)

val ir : nparts:int -> Skel.Ir.program
(** [scm nparts ccl_split ccl_band ccl_merge] as a one-shot program. *)

val source : nparts:int -> string
(** Specification-language version of the program. *)

val blobs_image : ?seed:int -> ?nblobs:int -> int -> int -> Vision.Image.t
(** Synthetic test input: random bright elliptic blobs on a dark background
    (deterministic in the seed). *)

val result_summary : Skel.Value.t -> int * int
(** [(ncomponents, total_foreground_area)] from the merge result. *)
