lib/apps/quadtree.ml: List Skel Vision
