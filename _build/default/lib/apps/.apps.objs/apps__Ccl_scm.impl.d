lib/apps/ccl_scm.ml: Array Bytes Int32 List Printf Skel String Support Vision
