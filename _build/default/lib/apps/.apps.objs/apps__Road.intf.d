lib/apps/road.mli: Skel Vision
