lib/apps/ccl_scm.mli: Skel Vision
