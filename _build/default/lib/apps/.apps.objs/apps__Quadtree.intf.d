lib/apps/quadtree.mli: Skel Vision
