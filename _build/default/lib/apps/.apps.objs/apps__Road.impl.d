lib/apps/road.ml: List Skel Vision
