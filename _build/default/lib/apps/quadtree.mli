(** Divide-and-conquer region segmentation with the tf skeleton.

    The paper introduces [tf] as the skeleton for divide-and-conquer
    algorithms, where workers recursively generate new packets. This
    application segments an image into homogeneous quadrants: each packet
    carries a region's pixels; a worker either accepts the region as
    homogeneous (intensity spread below a tolerance or region too small to
    split) and returns its descriptor, or splits it into four sub-region
    packets. The accumulator collects leaf descriptors. *)

type region = {
  x : int;
  y : int;
  w : int;
  h : int;
  mean : float;
}

val register : ?tolerance:int -> ?min_size:int -> Skel.Funtable.t -> unit
(** Registers [quad_work] (the tf worker function), [quad_acc], [quad_root]
    (builds the initial single-packet list from an image) and the
    [empty_leaves] constant (the accumulator seed, for the specification
    language). *)

val ir : nworkers:int -> Skel.Ir.program
(** [Pipe [Seq quad_root; Tf ...]] — a one-shot program whose input is an
    [Image]. *)

val leaves_of_value : Skel.Value.t -> region list
(** Decodes the accumulated leaf list, sorted by (y, x, w, h). *)

val reconstruct : width:int -> height:int -> region list -> Vision.Image.t
(** Paints every leaf region with its mean: a piecewise-constant
    approximation of the input (used to test coverage and disjointness). *)
