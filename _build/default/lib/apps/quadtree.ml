module V = Skel.Value

type region = { x : int; y : int; w : int; h : int; mean : float }

let packet ~x ~y img =
  V.Record [ ("x", V.Int x); ("y", V.Int y); ("img", V.Image img) ]

let leaf ~x ~y ~w ~h mean =
  V.Record
    [
      ("x", V.Int x); ("y", V.Int y); ("w", V.Int w); ("h", V.Int h);
      ("mean", V.Float mean);
    ]

let register ?(tolerance = 24) ?(min_size = 8) table =
  let reg = Skel.Funtable.register table in
  reg "quad_root" ~arity:1
    ~cost:(fun _ -> 1000.0)
    (fun v ->
      match v with
      | V.Image img -> V.List [ packet ~x:0 ~y:0 img ]
      | _ -> raise (V.Type_error "quad_root expects an image"));
  reg "quad_work" ~arity:1
    ~cost:(fun v ->
      match v with
      | V.Record _ -> (
          match V.field "img" v with
          | V.Image img -> 2000.0 +. (6.0 *. float_of_int (Vision.Image.size img))
          | _ -> 2000.0)
      | _ -> 2000.0)
    (fun v ->
      let x = V.to_int (V.field "x" v) and y = V.to_int (V.field "y" v) in
      let img = V.to_image (V.field "img" v) in
      let w = Vision.Image.width img and h = Vision.Image.height img in
      let lo, hi =
        Vision.Image.fold (fun (lo, hi) p -> (min lo p, max hi p)) (255, 0) img
      in
      if hi - lo <= tolerance || w <= min_size || h <= min_size then
        (* Homogeneous (or indivisible): a leaf, no new packets. *)
        V.Tuple [ V.List []; V.List [ leaf ~x ~y ~w ~h (Vision.Ops.mean img) ] ]
      else begin
        let w2 = w / 2 and h2 = h / 2 in
        let quads =
          [
            (0, 0, w2, h2);
            (w2, 0, w - w2, h2);
            (0, h2, w2, h - h2);
            (w2, h2, w - w2, h - h2);
          ]
        in
        let packets =
          List.map
            (fun (qx, qy, qw, qh) ->
              packet ~x:(x + qx) ~y:(y + qy)
                (Vision.Image.sub img ~x:qx ~y:qy ~w:qw ~h:qh))
            quads
        in
        V.Tuple [ V.List packets; V.List [] ]
      end);
  reg "empty_leaves" ~arity:0 ~cost:(fun _ -> 1.0) (fun _ -> V.List []);
  reg "quad_acc" ~arity:2
    ~cost:(fun _ -> 300.0)
    (fun v ->
      match v with
      | V.Tuple [ V.List acc; V.List leaves ] ->
          (* Canonical ordering keeps the fold commutative. *)
          V.List (List.sort V.compare (acc @ leaves))
      | _ -> raise (V.Type_error "quad_acc expects (list, list)"))

let ir ~nworkers =
  Skel.Ir.program "quadtree"
    (Skel.Ir.Pipe
       [
         Skel.Ir.Seq "quad_root";
         Skel.Ir.Tf
           { nworkers; work = "quad_work"; acc = "quad_acc"; init = V.List [] };
       ])

let leaves_of_value v =
  V.to_list v
  |> List.map (fun r ->
         {
           x = V.to_int (V.field "x" r);
           y = V.to_int (V.field "y" r);
           w = V.to_int (V.field "w" r);
           h = V.to_int (V.field "h" r);
           mean = V.to_float (V.field "mean" r);
         })
  |> List.sort (fun a b -> compare (a.y, a.x, a.w, a.h) (b.y, b.x, b.w, b.h))

let reconstruct ~width ~height leaves =
  let img = Vision.Image.create width height in
  List.iter
    (fun r ->
      for y = r.y to r.y + r.h - 1 do
        for x = r.x to r.x + r.w - 1 do
          if Vision.Image.in_bounds img x y then
            Vision.Image.set img x y (int_of_float r.mean)
        done
      done)
    leaves;
  img
