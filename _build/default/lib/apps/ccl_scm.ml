module V = Skel.Value

(* Labellings are packed as 4-byte little-endian labels so message sizes
   reflect the real data volume crossing the links. *)
let encode_labelling (lab : Vision.Ccl.labelling) =
  let n = Array.length lab.Vision.Ccl.labels in
  let b = Bytes.create (4 * n) in
  Array.iteri (fun i l -> Bytes.set_int32_le b (4 * i) (Int32.of_int l)) lab.Vision.Ccl.labels;
  V.Record
    [
      ("width", V.Int lab.Vision.Ccl.width);
      ("height", V.Int lab.Vision.Ccl.height);
      ("ncomponents", V.Int lab.Vision.Ccl.ncomponents);
      ("labels", V.Str (Bytes.to_string b));
    ]

let decode_labelling v =
  let width = V.to_int (V.field "width" v) in
  let height = V.to_int (V.field "height" v) in
  let ncomponents = V.to_int (V.field "ncomponents" v) in
  let s = V.to_str (V.field "labels" v) in
  if String.length s <> 4 * width * height then
    raise (V.Type_error "decode_labelling: size mismatch");
  let labels =
    Array.init (width * height) (fun i ->
        Int32.to_int (String.get_int32_le s (4 * i)))
  in
  { Vision.Ccl.labels; width; height; ncomponents }

let region_to_value (r : Vision.Ccl.region) =
  V.Record
    [
      ("label", V.Int r.Vision.Ccl.label);
      ("area", V.Int r.Vision.Ccl.area);
      ("cx", V.Float r.Vision.Ccl.cx);
      ("cy", V.Float r.Vision.Ccl.cy);
      ("min_x", V.Int r.Vision.Ccl.min_x);
      ("min_y", V.Int r.Vision.Ccl.min_y);
      ("max_x", V.Int r.Vision.Ccl.max_x);
      ("max_y", V.Int r.Vision.Ccl.max_y);
    ]

let register ?(threshold = 128) ?(label_cycles_per_px = 30.0) table =
  let reg = Skel.Funtable.register table in
  reg "ccl_split" ~arity:2
    ~cost:(fun v ->
      match v with
      | V.Tuple [ _; V.Image img ] ->
          2000.0 +. (0.5 *. float_of_int (Vision.Image.size img))
      | _ -> 2000.0)
    (fun v ->
      match v with
      | V.Tuple [ V.Int nparts; V.Image img ] ->
          let bands = Vision.Image.row_bands img nparts in
          (* row_bands may return fewer bands for degenerate heights; scm
             requires exactly nparts, so re-split trivially by repeating the
             last band as empty is not possible -- reject instead. *)
          if List.length bands <> nparts then
            raise (V.Type_error "ccl_split: image too short for that many bands");
          V.List
            (List.map
               (fun (y0, _ as band) ->
                 V.Record
                   [
                     ("y0", V.Int y0);
                     ("img", V.Image (Vision.Image.extract_band img band));
                   ])
               bands)
      | _ -> raise (V.Type_error "ccl_split expects (nparts, image)"));
  reg "ccl_band" ~arity:1
    ~cost:(fun v ->
      match v with
      | V.Record _ -> (
          match V.field "img" v with
          | V.Image img ->
              3000.0 +. (label_cycles_per_px *. float_of_int (Vision.Image.size img))
          | _ -> 3000.0)
      | _ -> 3000.0)
    (fun v ->
      let y0 = V.to_int (V.field "y0" v) in
      let img = V.to_image (V.field "img" v) in
      let lab = Vision.Ccl.label ~threshold img in
      V.Record [ ("y0", V.Int y0); ("labelling", encode_labelling lab) ])
  ;
  reg "ccl_merge" ~arity:1
    ~cost:(fun v ->
      match v with
      | V.List parts ->
          let pixels =
            List.fold_left
              (fun acc p ->
                match V.field "labelling" p with
                | V.Record _ as l ->
                    acc + (V.to_int (V.field "width" l) * V.to_int (V.field "height" l))
                | _ -> acc)
              0 parts
          in
          5000.0 +. (10.0 *. float_of_int pixels)
      | _ -> 5000.0)
    (fun v ->
      let parts = V.to_list v in
      let bands =
        List.map
          (fun p ->
            (decode_labelling (V.field "labelling" p), V.to_int (V.field "y0" p)))
          parts
        |> List.sort (fun (_, a) (_, b) -> compare a b)
      in
      let width =
        match bands with
        | ((lab : Vision.Ccl.labelling), _) :: _ -> lab.Vision.Ccl.width
        | [] -> raise (V.Type_error "ccl_merge: no bands")
      in
      let full = Vision.Ccl.merge_bands ~width bands in
      let regions = Vision.Ccl.regions full in
      V.Record
        [
          ("ncomponents", V.Int full.Vision.Ccl.ncomponents);
          ("regions", V.List (List.map region_to_value regions));
        ])

let ir ~nparts =
  Skel.Ir.program "ccl-scm"
    (Skel.Ir.Scm
       { nparts; split = "ccl_split"; compute = "ccl_band"; merge = "ccl_merge" })

let source ~nparts =
  Printf.sprintf
    {|(* Connected-component labelling with scm (MVA'98 companion app). *)
external ccl_split : int -> img -> band list
external ccl_band : band -> labelling
external ccl_merge : labelling list -> regions

let nparts = %d
let main = fun im -> scm nparts ccl_split ccl_band ccl_merge im
|}
    nparts

let blobs_image ?(seed = 7) ?(nblobs = 40) width height =
  let rng = Support.Prng.create seed in
  let img = Vision.Image.create ~init:20 width height in
  for _ = 1 to nblobs do
    let cx = Support.Prng.int rng width and cy = Support.Prng.int rng height in
    let rx = 2 + Support.Prng.int rng (max 2 (width / 20)) in
    let ry = 2 + Support.Prng.int rng (max 2 (height / 20)) in
    for y = cy - ry to cy + ry do
      for x = cx - rx to cx + rx do
        if Vision.Image.in_bounds img x y then begin
          let fx = float_of_int (x - cx) /. float_of_int rx
          and fy = float_of_int (y - cy) /. float_of_int ry in
          if (fx *. fx) +. (fy *. fy) <= 1.0 then Vision.Image.set img x y 220
        end
      done
    done
  done;
  img

let result_summary v =
  let n = V.to_int (V.field "ncomponents" v) in
  let area =
    List.fold_left
      (fun acc r -> acc + V.to_int (V.field "area" r))
      0
      (V.to_list (V.field "regions" v))
  in
  (n, area)
