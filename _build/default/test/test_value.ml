(* Tests for the universal value type: projections, equality, ordering,
   size model and printing. *)

module V = Skel.Value

let value_testable = Alcotest.testable V.pp V.equal

(* Generator for ground values (no images; image equality is covered in the
   vision tests). *)
let rec value_gen depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        return V.Unit;
        map (fun b -> V.Bool b) bool;
        map (fun n -> V.Int n) small_signed_int;
        map (fun f -> V.Float (float_of_int f)) small_signed_int;
        map (fun s -> V.Str s) (string_size ~gen:printable (int_bound 8));
      ]
  else
    frequency
      [
        (3, value_gen 0);
        (1, map (fun vs -> V.List vs) (list_size (int_bound 4) (value_gen (depth - 1))));
        ( 1,
          map2
            (fun a b -> V.Tuple [ a; b ])
            (value_gen (depth - 1)) (value_gen (depth - 1)) );
        ( 1,
          map
            (fun vs -> V.Record (List.mapi (fun i v -> (Printf.sprintf "f%d" i, v)) vs))
            (list_size (int_bound 3) (value_gen (depth - 1))) );
      ]

let arbitrary_value = QCheck.make (value_gen 3) ~print:V.to_string

let test_constructors_and_projections () =
  Alcotest.(check int) "to_int" 5 (V.to_int (V.int 5));
  Alcotest.(check bool) "to_bool" true (V.to_bool (V.bool true));
  Alcotest.(check string) "to_str" "hi" (V.to_str (V.str "hi"));
  Alcotest.(check (float 0.0)) "to_float" 2.5 (V.to_float (V.float 2.5));
  Alcotest.(check (float 0.0)) "int widens to float" 3.0 (V.to_float (V.int 3));
  let a, b = V.to_pair (V.pair (V.int 1) (V.int 2)) in
  Alcotest.(check int) "pair fst" 1 (V.to_int a);
  Alcotest.(check int) "pair snd" 2 (V.to_int b);
  Alcotest.(check int) "list length" 3
    (List.length (V.to_list (V.list [ V.int 1; V.int 2; V.int 3 ])))

let test_projection_errors () =
  let fails f = try ignore (f ()); false with V.Type_error _ -> true in
  Alcotest.(check bool) "int of bool" true (fails (fun () -> V.to_int (V.bool true)));
  Alcotest.(check bool) "pair of triple" true
    (fails (fun () -> V.to_pair (V.Tuple [ V.Unit; V.Unit; V.Unit ])));
  Alcotest.(check bool) "list of int" true (fails (fun () -> V.to_list (V.int 1)));
  Alcotest.(check bool) "image of int" true (fails (fun () -> V.to_image (V.int 1)))

let test_record_field () =
  let r = V.record [ ("a", V.int 1); ("b", V.str "x") ] in
  Alcotest.(check int) "field a" 1 (V.to_int (V.field "a" r));
  Alcotest.(check bool) "missing field" true
    (try ignore (V.field "z" r); false with V.Type_error _ -> true)

let test_byte_size () =
  Alcotest.(check int) "unit" 1 (V.byte_size V.Unit);
  Alcotest.(check int) "int" 4 (V.byte_size (V.int 0));
  Alcotest.(check int) "float" 8 (V.byte_size (V.float 0.0));
  Alcotest.(check int) "string" (4 + 5) (V.byte_size (V.str "hello"));
  Alcotest.(check int) "list header + elems" (4 + 8) (V.byte_size (V.list [ V.int 1; V.int 2 ]));
  let img = Vision.Image.create 10 10 in
  Alcotest.(check int) "image" 108 (V.byte_size (V.image img))

let test_equal_images () =
  let a = Vision.Image.create ~init:5 4 4 and b = Vision.Image.create ~init:5 4 4 in
  Alcotest.(check value_testable) "equal images" (V.image a) (V.image b);
  Vision.Image.set b 0 0 9;
  Alcotest.(check bool) "unequal images" false (V.equal (V.image a) (V.image b))

let test_equal_mixed_kinds () =
  Alcotest.(check bool) "int <> float" false (V.equal (V.int 1) (V.float 1.0));
  Alcotest.(check bool) "tuple <> list" false
    (V.equal (V.Tuple [ V.int 1; V.int 2 ]) (V.list [ V.int 1; V.int 2 ]))

let test_pp_forms () =
  let check s v = Alcotest.(check string) s s (V.to_string v) in
  check "()" V.Unit;
  check "42" (V.int 42);
  check "(1, 2)" (V.pair (V.int 1) (V.int 2));
  check "[1; 2]" (V.list [ V.int 1; V.int 2 ]);
  check "{a = 1}" (V.record [ ("a", V.int 1) ])

let prop_equal_reflexive =
  QCheck.Test.make ~name:"equality is reflexive" ~count:300 arbitrary_value (fun v ->
      V.equal v v)

let prop_compare_consistent_with_equal =
  QCheck.Test.make ~name:"compare = 0 iff equal" ~count:300
    (QCheck.pair arbitrary_value arbitrary_value) (fun (a, b) ->
      V.equal a b = (V.compare a b = 0))

let prop_compare_antisymmetric =
  QCheck.Test.make ~name:"compare is antisymmetric" ~count:300
    (QCheck.pair arbitrary_value arbitrary_value) (fun (a, b) ->
      let c1 = V.compare a b and c2 = V.compare b a in
      (c1 = 0 && c2 = 0) || (c1 > 0 && c2 < 0) || (c1 < 0 && c2 > 0))

let prop_compare_transitive =
  QCheck.Test.make ~name:"compare is transitive" ~count:300
    (QCheck.triple arbitrary_value arbitrary_value arbitrary_value) (fun (a, b, c) ->
      let sorted = List.sort V.compare [ a; b; c ] in
      (* sorting with a transitive comparator is stable wrt pairwise order *)
      match sorted with
      | [ x; y; z ] -> V.compare x y <= 0 && V.compare y z <= 0 && V.compare x z <= 0
      | _ -> false)

let prop_byte_size_positive =
  QCheck.Test.make ~name:"byte size is positive" ~count:300 arbitrary_value (fun v ->
      V.byte_size v > 0)

let () =
  Alcotest.run "value"
    [
      ( "projections",
        [
          Alcotest.test_case "constructors" `Quick test_constructors_and_projections;
          Alcotest.test_case "projection errors" `Quick test_projection_errors;
          Alcotest.test_case "record field" `Quick test_record_field;
        ] );
      ( "model",
        [
          Alcotest.test_case "byte size" `Quick test_byte_size;
          Alcotest.test_case "image equality" `Quick test_equal_images;
          Alcotest.test_case "mixed kinds" `Quick test_equal_mixed_kinds;
          Alcotest.test_case "printing" `Quick test_pp_forms;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_equal_reflexive;
          QCheck_alcotest.to_alcotest prop_compare_consistent_with_equal;
          QCheck_alcotest.to_alcotest prop_compare_antisymmetric;
          QCheck_alcotest.to_alcotest prop_compare_transitive;
          QCheck_alcotest.to_alcotest prop_byte_size_positive;
        ] );
    ]
