(* Tests for the ML front-end: lexer, parser, type inference, evaluator and
   skeleton extraction. *)

module L = Minicaml.Lexer
module P = Minicaml.Parser
module A = Minicaml.Ast
module T = Minicaml.Types
module I = Minicaml.Infer
module E = Minicaml.Eval
module X = Minicaml.Extract
module V = Skel.Value

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

let toks src = List.map (fun l -> l.L.tok) (L.tokenize src)

let test_lex_basic () =
  Alcotest.(check bool) "let binding" true
    (toks "let x = 1" = [ L.LET; L.IDENT "x"; L.EQUAL; L.INT 1; L.EOF ])

let test_lex_operators () =
  Alcotest.(check bool) "float ops" true
    (toks "+. *. :: -> <= <>" =
       [ L.OP "+."; L.OP "*."; L.OP "::"; L.ARROW; L.OP "<="; L.OP "<>"; L.EOF ])

let test_lex_numbers () =
  Alcotest.(check bool) "ints and floats" true
    (toks "42 3.5 1e3" = [ L.INT 42; L.FLOAT 3.5; L.INT 1; L.IDENT "e3"; L.EOF ]
    || toks "42 3.5" = [ L.INT 42; L.FLOAT 3.5; L.EOF ])

let test_lex_comments_nest () =
  Alcotest.(check bool) "nested comments" true
    (toks "1 (* a (* b *) c *) 2" = [ L.INT 1; L.INT 2; L.EOF ])

let test_lex_string_escapes () =
  Alcotest.(check bool) "escapes" true (toks {|"a\nb"|} = [ L.STRING "a\nb"; L.EOF ])

let test_lex_tyvar () =
  Alcotest.(check bool) "tyvar" true (toks "'a" = [ L.TYVAR "a"; L.EOF ])

let test_lex_errors () =
  let fails s = try ignore (L.tokenize s); false with L.Lex_error _ -> true in
  Alcotest.(check bool) "unterminated string" true (fails "\"abc");
  Alcotest.(check bool) "unterminated comment" true (fails "(* abc");
  Alcotest.(check bool) "bad char" true (fails "let x = #")

let test_lex_locations () =
  let located = L.tokenize "let\n  x = 1" in
  let x = List.nth located 1 in
  Alcotest.(check int) "line" 2 x.L.line;
  Alcotest.(check int) "col" 3 x.L.col

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let parse_expr_str s = Format.asprintf "%a" A.pp_expr (P.expression s)

let test_parse_precedence () =
  Alcotest.(check string) "mul binds tighter" "(1 + (2 * 3))" (parse_expr_str "1 + 2 * 3");
  Alcotest.(check string) "mod binds like mul" "(1 + (n mod 3))" (parse_expr_str "1 + n mod 3");
  Alcotest.(check string) "app binds tightest" "((f 1) + 2)" (parse_expr_str "f 1 + 2");
  Alcotest.(check string) "comparison" "((1 + 2) < (3 * 4))" (parse_expr_str "1 + 2 < 3 * 4");
  Alcotest.(check string) "and/or" "(a || (b && c))" (parse_expr_str "a || b && c")

let test_parse_cons_right_assoc () =
  Alcotest.(check string) "cons" "(1 :: (2 :: xs))" (parse_expr_str "1 :: 2 :: xs")

let test_parse_application_left_assoc () =
  Alcotest.(check string) "app" "(((f a) b) c)" (parse_expr_str "f a b c")

let test_parse_tuples_and_lists () =
  Alcotest.(check string) "tuple" "(1, 2, 3)" (parse_expr_str "1, 2, 3");
  Alcotest.(check string) "list" "[1; 2]" (parse_expr_str "[1; 2]");
  Alcotest.(check string) "empty list" "[]" (parse_expr_str "[]");
  Alcotest.(check string) "unit" "()" (parse_expr_str "()")

let test_parse_let_fun_sugar () =
  let prog = P.program "let add x y = x + y" in
  match prog with
  | [ A.Tlet { pat = A.Pvar ("add", _); expr = A.Lambda ([ _; _ ], _, _); _ } ] -> ()
  | _ -> Alcotest.fail "expected function sugar to produce a 2-parameter lambda"

let test_parse_let_rec () =
  match P.program "let rec f n = if n = 0 then 1 else n * f (n - 1)" with
  | [ A.Tlet { recursive = true; _ } ] -> ()
  | _ -> Alcotest.fail "expected recursive binding"

let test_parse_external () =
  match P.program "external f : int -> bool list" with
  | [ A.Texternal { name = "f"; ty = A.Tarrow_expr (_, A.Tname ("list", [ _ ], _), _); _ } ]
    -> ()
  | _ -> Alcotest.fail "expected external with arrow type"

let test_parse_tuple_pattern () =
  match P.program "let f (a, b) = a" with
  | [ A.Tlet { expr = A.Lambda ([ A.Ptuple ([ _; _ ], _) ], _, _); _ } ] -> ()
  | _ -> Alcotest.fail "expected tuple pattern parameter"

let test_parse_sequence () =
  Alcotest.(check string) "seq" "((f x); (g y))" (parse_expr_str "f x; g y")

let test_parse_if_fun () =
  Alcotest.(check string) "if" "(if a then 1 else 2)" (parse_expr_str "if a then 1 else 2");
  Alcotest.(check string) "fun" "(fun x -> (x + 1))" (parse_expr_str "fun x -> x + 1")

let test_parse_errors () =
  let fails s = try ignore (P.program s); false with P.Parse_error _ -> true in
  Alcotest.(check bool) "missing in" true (fails "let main = let x = 1 x");
  Alcotest.(check bool) "missing rparen" true (fails "let main = (1 + 2");
  Alcotest.(check bool) "bad top" true (fails "42");
  Alcotest.(check bool) "missing then" true (fails "let main = if a 1 else 2")

let test_parse_type_expression () =
  let t = P.type_expression "('a -> 'b) -> 'a list -> 'b list" in
  match t with
  | A.Tarrow_expr (A.Tarrow_expr _, A.Tarrow_expr (A.Tname ("list", _, _), _, _), _) -> ()
  | _ -> Alcotest.fail "unexpected type shape"

(* ------------------------------------------------------------------ *)
(* Types and inference                                                 *)

let infer_str src name =
  T.reset_counter ();
  let _, schemes = I.infer_program I.initial_env (P.program src) in
  match List.assoc_opt name schemes with
  | Some s -> T.scheme_to_string s
  | None -> Alcotest.failf "no binding %s" name

let test_infer_constants () =
  Alcotest.(check string) "int" "int" (infer_str "let x = 1 + 2" "x");
  Alcotest.(check string) "float" "float" (infer_str "let x = 1.0 +. 2.0" "x");
  Alcotest.(check string) "bool" "bool" (infer_str "let x = 1 < 2" "x");
  Alcotest.(check string) "string" "string" (infer_str {|let x = "a" ^ "b"|} "x")

let test_infer_polymorphic_id () =
  Alcotest.(check string) "id" "'a -> 'a" (infer_str "let id = fun x -> x" "id")

let test_infer_let_polymorphism () =
  Alcotest.(check string) "id reused at two types" "int"
    (infer_str "let id = fun x -> x\nlet a = id 1\nlet b = id true\nlet c = a" "c")

let test_infer_recursion () =
  Alcotest.(check string) "factorial" "int -> int"
    (infer_str "let rec f n = if n = 0 then 1 else n * f (n - 1)" "f")

let test_infer_skeleton_signatures () =
  (* The paper's published signatures, recovered from the initial env. *)
  T.reset_counter ();
  let check name expected =
    match I.lookup I.initial_env name with
    | Some s -> Alcotest.(check string) name expected (T.scheme_to_string s)
    | None -> Alcotest.failf "missing %s" name
  in
  check "df" "int -> ('a -> 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c";
  check "itermem" "('a -> 'b) -> ('c * 'b -> 'c * 'd) -> ('d -> unit) -> 'c -> 'a -> unit"

let test_infer_df_application () =
  Alcotest.(check string) "df instantiated" "int"
    (infer_str
       "let x = df 4 (fun n -> n * n) (fun a b -> a + b) 0 [1; 2; 3]" "x")

let test_infer_tracking_program () =
  let src = Tracking.Funcs.source Tracking.Funcs.default_config in
  Alcotest.(check string) "loop type" "state * img -> state * markList"
    (infer_str src "loop");
  Alcotest.(check string) "main type" "unit" (infer_str src "main")

let test_infer_errors () =
  let fails src = try ignore (infer_str src "x") ; false with I.Type_error _ -> true in
  Alcotest.(check bool) "int + bool" true (fails "let x = 1 + true");
  Alcotest.(check bool) "mod on floats" true (fails "let x = 1.0 mod 2.0");
  Alcotest.(check bool) "unbound" true (fails "let x = nope + 1");
  Alcotest.(check bool) "occurs check" true (fails "let x = fun f -> f f");
  Alcotest.(check bool) "branch mismatch" true (fails "let x = if true then 1 else false");
  Alcotest.(check bool) "condition not bool" true (fails "let x = if 1 then 2 else 3");
  Alcotest.(check bool) "heterogeneous list" true (fails "let x = [1; true]")

let test_infer_external_opaque_types () =
  Alcotest.(check string) "opaque flows through" "img -> mark"
    (infer_str "external f : img -> mark\nlet x = f" "x")

(* ------------------------------------------------------------------ *)
(* Evaluator                                                           *)

let eval_str ?(table = Skel.Funtable.create ()) src name =
  let ctx = E.make_ctx table in
  let env = E.eval_program ctx (P.program src) in
  match E.lookup env name with
  | Some v -> v
  | None -> Alcotest.failf "no binding %s" name

let check_int src name expected =
  match E.to_skel (eval_str src name) with
  | V.Int n -> Alcotest.(check int) name expected n
  | v -> Alcotest.failf "expected int, got %s" (V.to_string v)

let test_eval_arith () =
  check_int "let x = 1 + 2 * 3" "x" 7;
  check_int "let x = 10 / 3" "x" 3;
  check_int "let x = 17 mod 5" "x" 2;
  check_int "let x = if 2 < 3 then 1 else 0" "x" 1

let test_eval_closures () =
  check_int "let add = fun a b -> a + b\nlet inc = add 1\nlet x = inc 41" "x" 42

let test_eval_recursion () =
  check_int "let rec fact n = if n = 0 then 1 else n * fact (n - 1)\nlet x = fact 6" "x"
    720

let test_eval_lists () =
  check_int "let x = length (1 :: [2; 3] @ [4])" "x" 4;
  check_int "let x = fold_left (fun a b -> a + b) 0 (map (fun n -> n * n) [1; 2; 3])" "x" 14

let test_eval_tuples () =
  check_int "let p = (1, 2)\nlet x = fst p + snd p" "x" 3

let test_eval_division_by_zero () =
  Alcotest.(check bool) "raises" true
    (try ignore (eval_str "let x = 1 / 0" "x"); false with E.Runtime_error _ -> true)

let test_eval_skeletons_declaratively () =
  check_int "let x = df 4 (fun n -> n * n) (fun a b -> a + b) 0 [1; 2; 3; 4]" "x" 30;
  (* 4 -> (3, 2); 3 -> (2, 1); leaves 2, 1, 2 sum to 5 *)
  check_int
    "let x = tf 2 (fun n -> if n > 2 then ([n - 1; n - 2], 0) else ([], n)) (fun a b -> a + b) 0 [4]"
    "x" 5

let test_eval_external_cycles_charged () =
  let table = Skel.Funtable.create () in
  Skel.Funtable.register table "work" ~cost:(fun _ -> 123.0) (fun v -> v);
  let ctx = E.make_ctx table in
  let env = E.eval_program ctx (P.program "external work : int -> int\nlet x = work 1") in
  ignore (E.lookup env "x");
  Alcotest.(check (float 0.001)) "cycles" 123.0 ctx.E.cycles

let test_eval_comparison_of_functions_fails () =
  Alcotest.(check bool) "function compare raises" true
    (try
       ignore (eval_str "let x = (fun a -> a) = (fun b -> b)" "x");
       false
     with E.Runtime_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)

let test_extract_tracking_shape () =
  let config = Tracking.Funcs.default_config in
  let table = Tracking.Funcs.table config in
  let ex = X.extract ~frames:2 table (P.program (Tracking.Funcs.source config)) in
  (match ex.X.program.Skel.Ir.body with
  | Skel.Ir.Itermem { input = "read_img"; output = "display_marks"; loop; _ } -> (
      match loop with
      | Skel.Ir.Pipe [ Skel.Ir.Seq _; Skel.Ir.Df { nworkers = 8; comp = "detect_mark"; acc = "accum_marks"; _ }; Skel.Ir.Seq _ ] ->
          ()
      | other ->
          Alcotest.failf "unexpected loop shape %s"
            (Format.asprintf "%a" Skel.Ir.pp other))
  | _ -> Alcotest.fail "expected itermem at top level");
  match ex.X.input with
  | Some (V.Tuple [ V.Int 512; V.Int 512 ]) -> ()
  | _ -> Alcotest.fail "expected the (512, 512) input"

let test_extract_scm_lambda_main () =
  let table = Skel.Funtable.create () in
  Apps.Ccl_scm.register table;
  let ex = X.extract table (P.program (Apps.Ccl_scm.source ~nparts:4)) in
  match ex.X.program.Skel.Ir.body with
  | Skel.Ir.Scm { nparts = 4; split = "ccl_split"; compute = "ccl_band"; merge = "ccl_merge" }
    ->
      Alcotest.(check bool) "no fixed input" true (ex.X.input = None)
  | other -> Alcotest.failf "unexpected body %s" (Format.asprintf "%a" Skel.Ir.pp other)

let test_extract_wrapper_registration () =
  (* A stage with constant extra arguments gets a registered wrapper. *)
  let table = Skel.Funtable.create () in
  Skel.Funtable.register table "scale" ~arity:2 (fun v ->
      let k, x = V.to_pair v in
      V.Int (V.to_int k * V.to_int x));
  let src = "external scale : int -> int -> int\nlet k = 3\nlet main = fun x -> let y = scale k x in y" in
  let ex = X.extract table (P.program src) in
  match ex.X.program.Skel.Ir.body with
  | Skel.Ir.Seq wrapper ->
      Alcotest.(check bool) "wrapper registered" true (Skel.Funtable.mem table wrapper);
      Alcotest.(check bool) "wrapper works" true
        (V.equal (Skel.Funtable.apply table wrapper (V.Int 5)) (V.Int 15))
  | other -> Alcotest.failf "unexpected body %s" (Format.asprintf "%a" Skel.Ir.pp other)

let test_extract_errors () =
  let fails table src =
    try
      ignore (X.extract table (P.program src));
      false
    with X.Extract_error _ -> true
  in
  let t () =
    let t = Skel.Funtable.create () in
    Skel.Funtable.register t "f" (fun v -> v);
    Skel.Funtable.register t "acc" ~arity:2 (fun v -> fst (V.to_pair v));
    t
  in
  Alcotest.(check bool) "no main" true (fails (t ()) "let x = 1");
  Alcotest.(check bool) "df comp must be external" true
    (fails (t ())
       "external f : int -> int\nlet main = fun xs -> df 2 (fun x -> x) acc 0 xs");
  Alcotest.(check bool) "stage must consume dataflow" true
    (fails (t ()) "external f : int -> int\nlet main = fun x -> let y = f 1 in y");
  Alcotest.(check bool) "unknown function" true
    (fails (t ()) "let main = fun x -> let y = nosuch x in y")

let test_extract_emulation_agree () =
  (* Extraction + IR semantics must equal direct evaluator emulation. *)
  let config = { Tracking.Funcs.default_config with Tracking.Funcs.nproc = 4 } in
  let src = Tracking.Funcs.source config in
  let frames = 2 in
  let table1 = Tracking.Funcs.table config in
  let ex = X.extract ~frames table1 (P.program src) in
  let via_ir = Skel.Sem.run table1 ex.X.program (Option.get ex.X.input) in
  let table2 = Tracking.Funcs.table config in
  let ctx = E.make_ctx ~frames table2 in
  let mv = E.run_main ctx (P.program src) in
  let via_eval = E.emulation_result ctx mv in
  Alcotest.(check bool) "agree" true (V.equal via_ir via_eval)


(* ------------------------------------------------------------------ *)
(* Match expressions                                                   *)

let test_parse_match () =
  match P.expression "match xs with | [] -> 0 | x :: _ -> x" with
  | A.Match (A.Var ("xs", _), [ (A.Pnil _, _); (A.Pcons (A.Pvar ("x", _), A.Pwild _, _), _) ], _)
    -> ()
  | e -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" A.pp_expr e)

let test_parse_match_optional_first_bar () =
  match P.expression "match n with 0 -> 1 | _ -> 2" with
  | A.Match (_, [ (A.Pconst (A.Cint 0, _), _); (A.Pwild _, _) ], _) -> ()
  | e -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" A.pp_expr e)

let test_parse_match_list_pattern_sugar () =
  match P.expression "match xs with [a; b] -> a | _ -> 0" with
  | A.Match
      ( _,
        [ (A.Pcons (A.Pvar ("a", _), A.Pcons (A.Pvar ("b", _), A.Pnil _, _), _), _);
          (A.Pwild _, _) ],
        _ ) ->
      ()
  | e -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" A.pp_expr e)

let test_infer_match_list () =
  Alcotest.(check string) "sum type" "int list -> int"
    (infer_str
       "let rec sum xs = match xs with | [] -> 0 | x :: rest -> x + sum rest" "sum")

let test_infer_match_polymorphic () =
  Alcotest.(check string) "safe head" "'a list -> 'a -> 'a"
    (infer_str
       "let hd_or xs dflt = match xs with | [] -> dflt | x :: _ -> x" "hd_or")

let test_infer_match_errors () =
  let fails src = try ignore (infer_str src "x"); false with I.Type_error _ -> true in
  Alcotest.(check bool) "arm types differ" true
    (fails "let x = match 1 with | 0 -> true | _ -> 2");
  Alcotest.(check bool) "pattern type clash" true
    (fails "let x = match 1 with | [] -> 0 | _ -> 1");
  Alcotest.(check bool) "literal clash" true
    (fails {|let x = match 1 with | "a" -> 0 | _ -> 1|})

let test_eval_match_lists () =
  check_int
    "let rec sum xs = match xs with | [] -> 0 | x :: rest -> x + sum rest\nlet x = sum [1; 2; 3; 4]"
    "x" 10

let test_eval_match_literals () =
  check_int
    "let fib = fun n -> let rec f k = match k with | 0 -> 0 | 1 -> 1 | m -> f (m - 1) + f (m - 2) in f n\nlet x = fib 10"
    "x" 55

let test_eval_match_tuples () =
  check_int
    "let swap p = match p with | (a, b) -> (b, a)\nlet x = fst (swap (1, 2))" "x" 2

let test_eval_match_first_arm_wins () =
  check_int "let x = match 5 with | _ -> 1 | 5 -> 2" "x" 1

let test_eval_match_failure () =
  Alcotest.(check bool) "no arm matches" true
    (try ignore (eval_str "let x = match [] with | y :: _ -> y" "x"); false
     with E.Runtime_error _ -> true)

let test_eval_match_deep () =
  check_int
    "let rec pairsum xs = match xs with | [] -> 0 | (a, b) :: rest -> a + b + pairsum rest\nlet x = pairsum [(1, 2); (3, 4)]"
    "x" 10


(* ------------------------------------------------------------------ *)
(* Printer/parser round trip                                           *)

(* Random well-formed expressions over a tiny variable universe. Floats are
   restricted to integral values so printing with %g round-trips exactly. *)
let expr_gen =
  QCheck.Gen.(
    let var = oneofl [ "x"; "y"; "f"; "g" ] in
    let const =
      oneof
        [
          map (fun n -> A.Const (A.Cint (abs n), A.noloc)) small_signed_int;
          map (fun b -> A.Const (A.Cbool b, A.noloc)) bool;
          return (A.Const (A.Cunit, A.noloc));
          map
            (fun n -> A.Const (A.Cfloat (float_of_int (abs n)), A.noloc))
            small_signed_int;
        ]
    in
    let rec build depth =
      if depth = 0 then oneof [ const; map (fun x -> A.Var (x, A.noloc)) var ]
      else
        let sub = build (depth - 1) in
        frequency
          [
            (2, const);
            (2, map (fun x -> A.Var (x, A.noloc)) var);
            ( 1,
              map2
                (fun a b -> A.Tuple ([ a; b ], A.noloc))
                sub sub );
            (1, map (fun es -> A.List (es, A.noloc)) (list_size (int_bound 3) sub));
            (1, map2 (fun f a -> A.App (f, a, A.noloc)) (map (fun x -> A.Var (x, A.noloc)) var) sub);
            ( 1,
              map3
                (fun op a b -> A.Binop (op, a, b, A.noloc))
                (oneofl [ "+"; "-"; "*"; "<"; "="; "::"; "@"; "&&" ])
                sub sub );
            ( 1,
              map3
                (fun c t e -> A.If (c, t, e, A.noloc))
                sub sub sub );
            ( 1,
              map2
                (fun x body -> A.Lambda ([ A.Pvar (x, A.noloc) ], body, A.noloc))
                var sub );
            ( 1,
              map3
                (fun x bound body ->
                  A.Let
                    { recursive = false; pat = A.Pvar (x, A.noloc); bound; body;
                      loc = A.noloc })
                var sub sub );
            ( 1,
              map2
                (fun s arms ->
                  A.Match
                    ( s,
                      [ (A.Pnil A.noloc, fst arms);
                        ( A.Pcons (A.Pvar ("h", A.noloc), A.Pwild A.noloc, A.noloc),
                          snd arms ) ],
                      A.noloc ))
                sub (pair sub sub) );
          ]
    in
    build 3)

let arbitrary_expr =
  QCheck.make expr_gen ~print:(fun e -> Format.asprintf "%a" A.pp_expr e)

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"parse (print e) = e" ~count:300 arbitrary_expr (fun e ->
      let printed = Format.asprintf "%a" A.pp_expr e in
      match P.expression printed with
      | parsed -> A.equal_expr e parsed
      | exception (P.Parse_error _ | L.Lex_error _) ->
          QCheck.Test.fail_reportf "did not re-parse: %s" printed)


(* ------------------------------------------------------------------ *)
(* REPL sessions                                                       *)

let repl_session inputs =
  let table = Skel.Funtable.create () in
  Skel.Funtable.register table "triple" ~cost:(fun _ -> 10.0) (fun v ->
      V.Int (3 * V.to_int v));
  let session = ref (Minicaml.Repl.create table) in
  List.map
    (fun input ->
      let outcome = Minicaml.Repl.eval_input !session input in
      session := outcome.Minicaml.Repl.session;
      (outcome.Minicaml.Repl.ok, outcome.Minicaml.Repl.message))
    inputs

let test_repl_bindings_persist () =
  match repl_session [ "let x = 20"; "let y = x + 1"; "x + y" ] with
  | [ (true, m1); (true, m2); (true, m3) ] ->
      Alcotest.(check string) "x" "val x : int = 20" m1;
      Alcotest.(check string) "y" "val y : int = 21" m2;
      Alcotest.(check string) "expr" "- : int = 41" m3
  | _ -> Alcotest.fail "unexpected outcomes"

let test_repl_function_display () =
  match repl_session [ "let id = fun a -> a" ] with
  | [ (true, m) ] -> Alcotest.(check string) "fun" "val id : 'a -> 'a = <fun>" m
  | _ -> Alcotest.fail "unexpected"

let test_repl_errors_do_not_corrupt () =
  match repl_session [ "let x = 7"; "let y = x + true"; "nosuchvar"; "x" ] with
  | [ (true, _); (false, e1); (false, e2); (true, m) ] ->
      Alcotest.(check bool) "type error shown" true
        (Astring.String.is_infix ~affix:"Type error" e1);
      Alcotest.(check bool) "unbound shown" true
        (Astring.String.is_infix ~affix:"error" e2);
      Alcotest.(check string) "x survives" "- : int = 7" m
  | _ -> Alcotest.fail "unexpected outcomes"

let test_repl_external_and_skeletons () =
  match
    repl_session
      [ "external triple : int -> int"; "triple 14";
        "df 4 triple (fun a b -> a + b) 0 [1; 2; 3]" ]
  with
  | [ (true, _); (true, m1); (true, m2) ] ->
      Alcotest.(check string) "external applied" "- : int = 42" m1;
      Alcotest.(check string) "df in repl" "- : int = 18" m2
  | _ -> Alcotest.fail "unexpected outcomes"

let test_repl_parse_error_message () =
  match repl_session [ "let = 3" ] with
  | [ (false, m) ] ->
      Alcotest.(check bool) "reported" true
        (Astring.String.is_infix ~affix:"error" m)
  | _ -> Alcotest.fail "unexpected"

let test_repl_channel_loop () =
  let table = Skel.Funtable.create () in
  let input = "let a = 6;;\na * 7\n#quit\n" in
  let ic_path = Filename.temp_file "repl" ".in" in
  let oc_path = Filename.temp_file "repl" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove ic_path; Sys.remove oc_path)
    (fun () ->
      Out_channel.with_open_text ic_path (fun oc -> output_string oc input);
      In_channel.with_open_text ic_path (fun ic ->
          Out_channel.with_open_text oc_path (fun oc ->
              Minicaml.Repl.run_channel ~prompt:false table ic oc));
      let out = In_channel.with_open_text oc_path In_channel.input_all in
      Alcotest.(check bool) "binding echoed" true
        (Astring.String.is_infix ~affix:"val a : int = 6" out);
      Alcotest.(check bool) "expression echoed" true
        (Astring.String.is_infix ~affix:"- : int = 42" out))

let () =
  Alcotest.run "minicaml"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "numbers" `Quick test_lex_numbers;
          Alcotest.test_case "nested comments" `Quick test_lex_comments_nest;
          Alcotest.test_case "string escapes" `Quick test_lex_string_escapes;
          Alcotest.test_case "type variables" `Quick test_lex_tyvar;
          Alcotest.test_case "errors" `Quick test_lex_errors;
          Alcotest.test_case "locations" `Quick test_lex_locations;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "cons right assoc" `Quick test_parse_cons_right_assoc;
          Alcotest.test_case "application left assoc" `Quick test_parse_application_left_assoc;
          Alcotest.test_case "tuples and lists" `Quick test_parse_tuples_and_lists;
          Alcotest.test_case "function sugar" `Quick test_parse_let_fun_sugar;
          Alcotest.test_case "let rec" `Quick test_parse_let_rec;
          Alcotest.test_case "external" `Quick test_parse_external;
          Alcotest.test_case "tuple pattern" `Quick test_parse_tuple_pattern;
          Alcotest.test_case "sequence" `Quick test_parse_sequence;
          Alcotest.test_case "if and fun" `Quick test_parse_if_fun;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "type expressions" `Quick test_parse_type_expression;
        ] );
      ( "inference",
        [
          Alcotest.test_case "constants" `Quick test_infer_constants;
          Alcotest.test_case "polymorphic id" `Quick test_infer_polymorphic_id;
          Alcotest.test_case "let polymorphism" `Quick test_infer_let_polymorphism;
          Alcotest.test_case "recursion" `Quick test_infer_recursion;
          Alcotest.test_case "skeleton signatures" `Quick test_infer_skeleton_signatures;
          Alcotest.test_case "df application" `Quick test_infer_df_application;
          Alcotest.test_case "tracking program" `Quick test_infer_tracking_program;
          Alcotest.test_case "errors" `Quick test_infer_errors;
          Alcotest.test_case "opaque external types" `Quick test_infer_external_opaque_types;
        ] );
      ( "evaluator",
        [
          Alcotest.test_case "arithmetic" `Quick test_eval_arith;
          Alcotest.test_case "closures" `Quick test_eval_closures;
          Alcotest.test_case "recursion" `Quick test_eval_recursion;
          Alcotest.test_case "lists" `Quick test_eval_lists;
          Alcotest.test_case "tuples" `Quick test_eval_tuples;
          Alcotest.test_case "division by zero" `Quick test_eval_division_by_zero;
          Alcotest.test_case "skeletons declaratively" `Quick test_eval_skeletons_declaratively;
          Alcotest.test_case "external cycles charged" `Quick test_eval_external_cycles_charged;
          Alcotest.test_case "functions incomparable" `Quick test_eval_comparison_of_functions_fails;
        ] );
      ( "match",
        [
          Alcotest.test_case "parse match" `Quick test_parse_match;
          Alcotest.test_case "optional first bar" `Quick test_parse_match_optional_first_bar;
          Alcotest.test_case "list pattern sugar" `Quick test_parse_match_list_pattern_sugar;
          Alcotest.test_case "infer sum over list" `Quick test_infer_match_list;
          Alcotest.test_case "infer polymorphic head" `Quick test_infer_match_polymorphic;
          Alcotest.test_case "infer errors" `Quick test_infer_match_errors;
          Alcotest.test_case "eval list recursion" `Quick test_eval_match_lists;
          Alcotest.test_case "eval literal arms" `Quick test_eval_match_literals;
          Alcotest.test_case "eval tuple arm" `Quick test_eval_match_tuples;
          Alcotest.test_case "first arm wins" `Quick test_eval_match_first_arm_wins;
          Alcotest.test_case "match failure" `Quick test_eval_match_failure;
          Alcotest.test_case "deep patterns" `Quick test_eval_match_deep;
        ] );
      ("roundtrip", [ QCheck_alcotest.to_alcotest prop_print_parse_roundtrip ]);
      ( "repl",
        [
          Alcotest.test_case "bindings persist" `Quick test_repl_bindings_persist;
          Alcotest.test_case "function display" `Quick test_repl_function_display;
          Alcotest.test_case "errors do not corrupt" `Quick test_repl_errors_do_not_corrupt;
          Alcotest.test_case "externals and skeletons" `Quick test_repl_external_and_skeletons;
          Alcotest.test_case "parse error message" `Quick test_repl_parse_error_message;
          Alcotest.test_case "channel loop" `Quick test_repl_channel_loop;
        ] );
      ( "extraction",
        [
          Alcotest.test_case "tracking shape" `Quick test_extract_tracking_shape;
          Alcotest.test_case "scm lambda main" `Quick test_extract_scm_lambda_main;
          Alcotest.test_case "wrapper registration" `Quick test_extract_wrapper_registration;
          Alcotest.test_case "errors" `Quick test_extract_errors;
          Alcotest.test_case "IR vs evaluator emulation" `Quick test_extract_emulation_agree;
        ] );
    ]
