(* Tests for Vision.Ops: pointwise operators, filters, the summed-area
   table and Otsu thresholding. *)

module I = Vision.Image
module O = Vision.Ops

let random_image seed w h =
  let rng = Support.Prng.create seed in
  let img = I.create w h in
  I.iter (fun x y _ -> I.set img x y (Support.Prng.int rng 256)) img;
  img

let test_threshold () =
  let img = I.create 2 1 in
  I.set img 0 0 99;
  I.set img 1 0 100;
  let t = O.threshold 100 img in
  Alcotest.(check int) "below" 0 (I.get t 0 0);
  Alcotest.(check int) "at threshold" 255 (I.get t 1 0)

let test_threshold_idempotent () =
  let img = random_image 1 20 20 in
  let once = O.threshold 128 img in
  let twice = O.threshold 128 once in
  Alcotest.(check bool) "idempotent" true (I.equal once twice)

let test_invert_involution () =
  let img = random_image 2 15 10 in
  Alcotest.(check bool) "invert twice" true (I.equal img (O.invert (O.invert img)))

let test_histogram_total () =
  let img = random_image 3 17 13 in
  let h = O.histogram img in
  Alcotest.(check int) "bins" 256 (Array.length h);
  Alcotest.(check int) "total" (I.size img) (Array.fold_left ( + ) 0 h)

let test_otsu_bimodal () =
  let img = I.create 20 20 in
  I.iter (fun x y _ -> I.set img x y (if x < 10 then 30 else 220)) img;
  let t = O.otsu_threshold img in
  Alcotest.(check bool) "threshold separates the modes" true (t >= 30 && t < 220)

let test_otsu_uniform () =
  let img = I.create ~init:128 8 8 in
  (* Degenerate input must still return something in range. *)
  let t = O.otsu_threshold img in
  Alcotest.(check bool) "in range" true (t >= 0 && t <= 255)

let test_convolve_identity () =
  let img = random_image 4 9 9 in
  let k = [| 0; 0; 0; 0; 1; 0; 0; 0; 0 |] in
  Alcotest.(check bool) "identity kernel" true (I.equal img (O.convolve3 k img))

let test_convolve_rejects_bad_kernel () =
  let img = I.create 3 3 in
  Alcotest.check_raises "wrong size"
    (Invalid_argument "Ops.convolve3: kernel must be 3x3") (fun () ->
      ignore (O.convolve3 [| 1; 2 |] img));
  Alcotest.check_raises "div zero" (Invalid_argument "Ops.convolve3: div = 0")
    (fun () -> ignore (O.convolve3 (Array.make 9 1) ~div:0 img))

let test_sobel_flat_is_zero () =
  let img = I.create ~init:77 10 10 in
  let s = O.sobel_magnitude img in
  Alcotest.(check int) "no gradient" 0 (I.fold ( + ) 0 s)

let test_sobel_detects_edge () =
  let img = I.create 10 10 in
  I.iter (fun x y _ -> I.set img x y (if x < 5 then 0 else 255)) img;
  let s = O.sobel_magnitude img in
  Alcotest.(check bool) "edge response" true (I.get s 5 5 > 200);
  Alcotest.(check int) "flat area silent" 0 (I.get s 1 5)

let test_box_blur_preserves_flat () =
  let img = I.create ~init:100 6 6 in
  Alcotest.(check bool) "flat stays flat" true (I.equal img (O.box_blur img))

let test_erode_dilate_ordering () =
  let img = random_image 5 12 12 in
  let e = O.erode3 img and d = O.dilate3 img in
  let ok = ref true in
  I.iter
    (fun x y v ->
      if not (I.get e x y <= v && v <= I.get d x y) then ok := false)
    img;
  Alcotest.(check bool) "erode <= id <= dilate" true !ok

let naive_rect_sum img x y w h =
  let acc = ref 0 in
  for yy = y to y + h - 1 do
    for xx = x to x + w - 1 do
      if I.in_bounds img xx yy then acc := !acc + I.get img xx yy
    done
  done;
  !acc

let test_integral_full () =
  let img = random_image 6 11 7 in
  let sat = O.integral img in
  Alcotest.(check int) "full rectangle = total" (I.fold ( + ) 0 img)
    (O.rect_sum img sat ~x:0 ~y:0 ~w:11 ~h:7)

let test_mean () =
  let img = I.create ~init:10 4 4 in
  I.set img 0 0 26;
  Alcotest.(check (float 0.001)) "mean" 11.0 (O.mean img)

let test_count_above () =
  let img = I.create 3 1 in
  I.set img 0 0 10;
  I.set img 1 0 20;
  I.set img 2 0 30;
  Alcotest.(check int) "count" 2 (O.count_above 20 img)

let test_diff_count () =
  let a = I.create ~init:5 3 3 in
  let b = I.copy a in
  I.set b 1 1 6;
  Alcotest.(check int) "one diff" 1 (O.diff_count a b);
  Alcotest.check_raises "dims" (Invalid_argument "Ops.diff_count: dimension mismatch")
    (fun () -> ignore (O.diff_count a (I.create 2 2)))

let prop_rect_sum_matches_naive =
  QCheck.Test.make ~name:"rect_sum equals naive summation" ~count:150
    QCheck.(quad (int_bound 1000) (int_range 1 15) (int_range 1 15) (pair small_nat small_nat))
    (fun (seed, w, h, (rx, ry)) ->
      let img = random_image seed w h in
      let sat = O.integral img in
      let rw = 1 + (rx mod w) and rh = 1 + (ry mod h) in
      let x = rx mod w and y = ry mod h in
      O.rect_sum img sat ~x ~y ~w:rw ~h:rh = naive_rect_sum img x y rw rh)

let prop_threshold_binary =
  QCheck.Test.make ~name:"threshold output is binary" ~count:100
    QCheck.(pair (int_bound 1000) (int_bound 255))
    (fun (seed, t) ->
      let img = random_image seed 10 10 in
      let b = O.threshold t img in
      I.fold (fun ok _ -> ok) true b
      |> fun _ ->
      let ok = ref true in
      I.iter (fun _ _ v -> if v <> 0 && v <> 255 then ok := false) b;
      !ok)


(* --- extended filters and geometry --- *)

let test_median_removes_salt () =
  let img = I.create ~init:100 9 9 in
  I.set img 4 4 255;
  let m = O.median3 img in
  Alcotest.(check int) "speck removed" 100 (I.get m 4 4)

let test_median_preserves_flat () =
  let img = I.create ~init:42 7 7 in
  Alcotest.(check bool) "flat unchanged" true (I.equal img (O.median3 img))

let test_gaussian_preserves_flat () =
  let img = I.create ~init:90 8 8 in
  Alcotest.(check bool) "flat unchanged" true (I.equal img (O.gaussian5 img))

let test_gaussian_smooths () =
  let img = I.create 11 11 in
  I.set img 5 5 255;
  let g = O.gaussian5 img in
  Alcotest.(check bool) "peak reduced" true (I.get g 5 5 < 255);
  Alcotest.(check bool) "mass spread" true (I.get g 4 5 > 0)

let test_downsample_dims_and_mean () =
  let img = I.create ~init:80 10 6 in
  let d = O.downsample2 img in
  Alcotest.(check int) "w" 5 (I.width d);
  Alcotest.(check int) "h" 3 (I.height d);
  Alcotest.(check int) "average preserved" 80 (I.get d 2 1)

let test_upsample_then_downsample () =
  let img = random_image 9 6 5 in
  let back = O.downsample2 (O.upsample2 img) in
  Alcotest.(check bool) "roundtrip identity" true (I.equal img back)

let test_flips_are_involutions () =
  let img = random_image 10 9 7 in
  Alcotest.(check bool) "horizontal" true
    (I.equal img (O.flip_horizontal (O.flip_horizontal img)));
  Alcotest.(check bool) "vertical" true
    (I.equal img (O.flip_vertical (O.flip_vertical img)))

let test_rotate90_four_times () =
  let img = random_image 11 7 5 in
  let r4 = O.rotate90 (O.rotate90 (O.rotate90 (O.rotate90 img))) in
  Alcotest.(check bool) "identity" true (I.equal img r4);
  let r1 = O.rotate90 img in
  Alcotest.(check int) "dims swap" (I.height img) (I.width r1)

let test_rotate90_corner () =
  let img = I.create 3 2 in
  I.set img 0 0 200;
  let r = O.rotate90 img in
  (* clockwise: top-left goes to top-right *)
  Alcotest.(check int) "corner moved" 200 (I.get r 1 0)

let test_equalize_constant_identity () =
  let img = I.create ~init:17 6 6 in
  Alcotest.(check bool) "constant unchanged" true (I.equal img (O.equalize img))

let test_equalize_spreads_histogram () =
  (* Two tight clusters spread towards the extremes. *)
  let img = I.create 10 10 in
  I.iter (fun x y _ -> I.set img x y (if (x + y) mod 2 = 0 then 100 else 110)) img;
  let e = O.equalize img in
  Alcotest.(check bool) "low cluster at 0" true (I.get e 0 0 < 10);
  Alcotest.(check bool) "high cluster at 255" true (I.get e 1 0 > 245)

(* --- drawing --- *)

let test_draw_rect_outline () =
  let img = I.create 10 10 in
  Vision.Draw.rect img ~x:2 ~y:2 ~w:5 ~h:4 200;
  Alcotest.(check int) "corner" 200 (I.get img 2 2);
  Alcotest.(check int) "far corner" 200 (I.get img 6 5);
  Alcotest.(check int) "interior untouched" 0 (I.get img 4 3)

let test_draw_clips () =
  let img = I.create 4 4 in
  (* entirely off-image: must not raise *)
  Vision.Draw.rect img ~x:(-10) ~y:(-10) ~w:5 ~h:5 99;
  Vision.Draw.cross img ~x:100 ~y:100 ~size:5 99;
  Vision.Draw.line img ~x0:(-5) ~y0:(-5) ~x1:10 ~y1:10 50;
  Alcotest.(check int) "diagonal drawn where visible" 50 (I.get img 2 2)

let test_draw_line_endpoints () =
  let img = I.create 8 8 in
  Vision.Draw.line img ~x0:1 ~y0:1 ~x1:6 ~y1:4 255;
  Alcotest.(check int) "start" 255 (I.get img 1 1);
  Alcotest.(check int) "end" 255 (I.get img 6 4)

let test_draw_disc_radius () =
  let img = I.create 11 11 in
  Vision.Draw.disc img ~x:5 ~y:5 ~r:3 255;
  Alcotest.(check int) "centre" 255 (I.get img 5 5);
  Alcotest.(check int) "edge inside" 255 (I.get img 8 5);
  Alcotest.(check int) "outside" 0 (I.get img 9 5)

let prop_median_bounded_by_neighbourhood =
  QCheck.Test.make ~name:"median output within min/max of image" ~count:60
    (QCheck.int_bound 1000) (fun seed ->
      let img = random_image seed 12 12 in
      let lo = I.fold min 255 img and hi = I.fold max 0 img in
      let m = O.median3 img in
      I.fold (fun ok v -> ok && v >= lo && v <= hi) true m
      |> fun _ ->
      let ok = ref true in
      I.iter (fun _ _ v -> if v < lo || v > hi then ok := false) m;
      !ok)

let () =
  Alcotest.run "ops"
    [
      ( "pointwise",
        [
          Alcotest.test_case "threshold" `Quick test_threshold;
          Alcotest.test_case "threshold idempotent" `Quick test_threshold_idempotent;
          Alcotest.test_case "invert involution" `Quick test_invert_involution;
          Alcotest.test_case "histogram total" `Quick test_histogram_total;
          Alcotest.test_case "otsu bimodal" `Quick test_otsu_bimodal;
          Alcotest.test_case "otsu uniform" `Quick test_otsu_uniform;
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "count_above" `Quick test_count_above;
          Alcotest.test_case "diff_count" `Quick test_diff_count;
        ] );
      ( "filters",
        [
          Alcotest.test_case "convolve identity" `Quick test_convolve_identity;
          Alcotest.test_case "convolve bad kernel" `Quick test_convolve_rejects_bad_kernel;
          Alcotest.test_case "sobel flat" `Quick test_sobel_flat_is_zero;
          Alcotest.test_case "sobel edge" `Quick test_sobel_detects_edge;
          Alcotest.test_case "box blur flat" `Quick test_box_blur_preserves_flat;
          Alcotest.test_case "erode/dilate ordering" `Quick test_erode_dilate_ordering;
        ] );
      ( "extended",
        [
          Alcotest.test_case "median removes salt" `Quick test_median_removes_salt;
          Alcotest.test_case "median preserves flat" `Quick test_median_preserves_flat;
          Alcotest.test_case "gaussian preserves flat" `Quick test_gaussian_preserves_flat;
          Alcotest.test_case "gaussian smooths" `Quick test_gaussian_smooths;
          Alcotest.test_case "downsample dims and mean" `Quick test_downsample_dims_and_mean;
          Alcotest.test_case "up/down roundtrip" `Quick test_upsample_then_downsample;
          Alcotest.test_case "flips are involutions" `Quick test_flips_are_involutions;
          Alcotest.test_case "rotate90 x4" `Quick test_rotate90_four_times;
          Alcotest.test_case "rotate90 corner" `Quick test_rotate90_corner;
          Alcotest.test_case "equalize constant" `Quick test_equalize_constant_identity;
          Alcotest.test_case "equalize spreads" `Quick test_equalize_spreads_histogram;
          QCheck_alcotest.to_alcotest prop_median_bounded_by_neighbourhood;
        ] );
      ( "draw",
        [
          Alcotest.test_case "rect outline" `Quick test_draw_rect_outline;
          Alcotest.test_case "clipping" `Quick test_draw_clips;
          Alcotest.test_case "line endpoints" `Quick test_draw_line_endpoints;
          Alcotest.test_case "disc radius" `Quick test_draw_disc_radius;
        ] );
      ( "integral",
        [
          Alcotest.test_case "full rectangle" `Quick test_integral_full;
          QCheck_alcotest.to_alcotest prop_rect_sum_matches_naive;
          QCheck_alcotest.to_alcotest prop_threshold_binary;
        ] );
    ]
