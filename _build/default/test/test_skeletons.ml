(* Tests for the declarative skeleton definitions (paper §2 and Fig. 4). *)

module S = Skel.Skeletons

let test_df_is_fold_map () =
  let result = S.df 4 (fun x -> x * x) ( + ) 0 [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "sum of squares" 30 result

let test_df_ignores_worker_count () =
  let f n = S.df n string_of_int (fun acc s -> acc ^ s) "" [ 1; 2; 3 ] in
  Alcotest.(check string) "n=1" "123" (f 1);
  Alcotest.(check string) "n=100" "123" (f 100)

let test_df_empty_list () =
  Alcotest.(check int) "empty gives init" 42 (S.df 3 (fun x -> x) ( + ) 42 [])

let test_df_accumulation_order () =
  (* Declaratively, accumulation is left-to-right over the input order. *)
  let result = S.df 2 (fun x -> x) (fun acc x -> acc @ [ x ]) [] [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "left fold order" [ 1; 2; 3 ] result

let test_scm_composition () =
  (* Split a string into n chunks, upper-case each, concatenate. *)
  let split n s =
    let len = String.length s in
    let chunk = (len + n - 1) / n in
    List.init n (fun i ->
        let start = i * chunk in
        if start >= len then "" else String.sub s start (min chunk (len - start)))
  in
  let result = S.scm 3 split String.uppercase_ascii (String.concat "") "abcdef" in
  Alcotest.(check string) "scm" "ABCDEF" result

let test_scm_merge_sees_part_order () =
  let split n x = List.init n (fun i -> (i, x)) in
  let result = S.scm 4 split fst (List.map string_of_int) 99 in
  Alcotest.(check (list string)) "parts in order" [ "0"; "1"; "2"; "3" ] result

let test_tf_no_new_packets_is_df () =
  let work x = ([], x * 2) in
  Alcotest.(check int) "tf degenerates to df" 12 (S.tf 3 work ( + ) 0 [ 1; 2; 3 ])

let test_tf_generates_packets () =
  (* Summing 2^depth leaves of a binary division of an interval. *)
  let work (lo, hi) =
    if hi - lo <= 1 then ([], lo)
    else
      let mid = (lo + hi) / 2 in
      ([ (lo, mid); (mid, hi) ], 0)
  in
  let result = S.tf 4 work ( + ) 0 [ (0, 8) ] in
  Alcotest.(check int) "sum 0..7" 28 result

let test_tf_depth_first_order () =
  (* Depth-first: sub-packets are processed before the rest of the queue. *)
  let log = ref [] in
  let work x =
    log := x :: !log;
    if x = 1 then ([ 10; 11 ], x) else ([], x)
  in
  let _ = S.tf 2 work ( + ) 0 [ 1; 2 ] in
  Alcotest.(check (list int)) "visit order" [ 1; 10; 11; 2 ] (List.rev !log)

let test_itermem_n_counts () =
  let outs = ref [] in
  let loop (z, x) = (z + x, z * 10) in
  let final = S.itermem_n 4 (fun x -> x) loop (fun y -> outs := y :: !outs) 0 1 in
  Alcotest.(check int) "final state" 4 final;
  Alcotest.(check (list int)) "outputs" [ 0; 10; 20; 30 ] (List.rev !outs)

let test_itermem_n_zero () =
  let final = S.itermem_n 0 (fun x -> x) (fun (z, _) -> (z, ())) ignore 7 0 in
  Alcotest.(check int) "no iterations" 7 final

let test_itermem_n_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "itermem_n: negative iteration count")
    (fun () -> ignore (S.itermem_n (-1) (fun x -> x) (fun (z, _) -> (z, ())) ignore 7 0))

let test_itermem_stream () =
  let final, outs = S.itermem_stream 3 (fun i -> i * 2) (fun (z, x) -> (z + x, x)) 0 in
  Alcotest.(check int) "final accumulates inputs" 6 final;
  Alcotest.(check (list int)) "outputs are inputs" [ 0; 2; 4 ] outs

let prop_df_equals_fold_map =
  QCheck.Test.make ~name:"df n f (+) z = fold (+) z . map f" ~count:300
    QCheck.(triple (int_range 1 16) (list small_signed_int) small_signed_int)
    (fun (n, xs, z) ->
      S.df n (fun x -> (2 * x) + 1) ( + ) z xs
      = List.fold_left ( + ) z (List.map (fun x -> (2 * x) + 1) xs))

let prop_scm_equals_direct =
  QCheck.Test.make ~name:"scm = merge . map comp . split" ~count:300
    QCheck.(pair (int_range 1 8) (small_list small_signed_int))
    (fun (n, xs) ->
      let split k l =
        (* deal round-robin into k sublists *)
        let buckets = Array.make k [] in
        List.iteri (fun i x -> buckets.(i mod k) <- x :: buckets.(i mod k)) l;
        Array.to_list (Array.map List.rev buckets)
      in
      let comp = List.map (fun x -> x * x) in
      let merge = List.concat in
      S.scm n split comp merge xs = merge (List.map comp (split n xs)))

let prop_tf_sum_invariant =
  QCheck.Test.make ~name:"tf interval division sums correctly" ~count:200
    QCheck.(int_range 1 60)
    (fun hi ->
      let work (lo, h) =
        if h - lo <= 1 then ([], lo)
        else
          let mid = (lo + h) / 2 in
          ([ (lo, mid); (mid, h) ], 0)
      in
      S.tf 3 work ( + ) 0 [ (0, hi) ] = hi * (hi - 1) / 2)

let () =
  Alcotest.run "skeletons"
    [
      ( "df",
        [
          Alcotest.test_case "fold of map" `Quick test_df_is_fold_map;
          Alcotest.test_case "worker count irrelevant" `Quick test_df_ignores_worker_count;
          Alcotest.test_case "empty list" `Quick test_df_empty_list;
          Alcotest.test_case "accumulation order" `Quick test_df_accumulation_order;
        ] );
      ( "scm",
        [
          Alcotest.test_case "composition" `Quick test_scm_composition;
          Alcotest.test_case "merge sees part order" `Quick test_scm_merge_sees_part_order;
        ] );
      ( "tf",
        [
          Alcotest.test_case "degenerates to df" `Quick test_tf_no_new_packets_is_df;
          Alcotest.test_case "generates packets" `Quick test_tf_generates_packets;
          Alcotest.test_case "depth-first order" `Quick test_tf_depth_first_order;
        ] );
      ( "itermem",
        [
          Alcotest.test_case "bounded iteration" `Quick test_itermem_n_counts;
          Alcotest.test_case "zero iterations" `Quick test_itermem_n_zero;
          Alcotest.test_case "negative rejected" `Quick test_itermem_n_negative;
          Alcotest.test_case "stream variant" `Quick test_itermem_stream;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_df_equals_fold_map;
          QCheck_alcotest.to_alcotest prop_scm_equals_direct;
          QCheck_alcotest.to_alcotest prop_tf_sum_invariant;
        ] );
    ]
