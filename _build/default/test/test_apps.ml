(* Tests for the companion applications: scm CCL, road following and the tf
   quadtree. *)

module V = Skel.Value

(* ------------------------------------------------------------------ *)
(* CCL via scm                                                         *)

let ccl_table () =
  let t = Skel.Funtable.create () in
  Apps.Ccl_scm.register t;
  t

let test_labelling_roundtrip () =
  let img = Apps.Ccl_scm.blobs_image ~seed:5 ~nblobs:8 40 30 in
  let lab = Vision.Ccl.label ~threshold:128 img in
  let lab' = Apps.Ccl_scm.decode_labelling (Apps.Ccl_scm.encode_labelling lab) in
  Alcotest.(check bool) "roundtrip" true (Vision.Ccl.equivalent lab lab');
  Alcotest.(check int) "ncomponents preserved" lab.Vision.Ccl.ncomponents
    lab'.Vision.Ccl.ncomponents

let test_decode_rejects_corrupt () =
  let bad =
    V.Record
      [ ("width", V.Int 4); ("height", V.Int 4); ("ncomponents", V.Int 0);
        ("labels", V.Str "xy") ]
  in
  Alcotest.(check bool) "size mismatch" true
    (try ignore (Apps.Ccl_scm.decode_labelling bad); false with V.Type_error _ -> true)

let test_ccl_scm_matches_direct () =
  let img = Apps.Ccl_scm.blobs_image ~seed:21 ~nblobs:25 128 96 in
  let direct = Vision.Ccl.label ~threshold:128 img in
  List.iter
    (fun nparts ->
      let table = ccl_table () in
      let result =
        Skel.Sem.run table (Apps.Ccl_scm.ir ~nparts) (V.Image img)
      in
      let n, area = Apps.Ccl_scm.result_summary result in
      Alcotest.(check int)
        (Printf.sprintf "%d bands component count" nparts)
        direct.Vision.Ccl.ncomponents n;
      Alcotest.(check int) "area" (Vision.Ops.count_above 128 img) area)
    [ 1; 2; 4; 6 ]

let test_ccl_scm_parallel_equals_sequential () =
  let img = Apps.Ccl_scm.blobs_image ~seed:9 ~nblobs:15 96 96 in
  let table = ccl_table () in
  let prog = Apps.Ccl_scm.ir ~nparts:4 in
  let seq = Skel.Sem.run table prog (V.Image img) in
  let g = Procnet.Expand.expand table prog in
  let arch = Archi.ring 5 in
  let r =
    Executive.run ~table ~arch
      ~placement:(Syndex.Place.canonical g arch)
      ~graph:g ~frames:1 ~input:(V.Image img) ()
  in
  Alcotest.(check bool) "equal" true (V.equal seq r.Executive.value)

let test_ccl_split_rejects_short_image () =
  let table = ccl_table () in
  let img = Vision.Image.create 8 2 in
  Alcotest.(check bool) "too many bands" true
    (try
       ignore
         (Skel.Funtable.apply table "ccl_split" (V.Tuple [ V.Int 5; V.Image img ]));
       false
     with V.Type_error _ -> true)

let test_ccl_source_compiles () =
  let table = ccl_table () in
  let compiled =
    Skipper_lib.Pipeline.compile_source ~table (Apps.Ccl_scm.source ~nparts:3)
  in
  match compiled.Skipper_lib.Pipeline.program.Skel.Ir.body with
  | Skel.Ir.Scm { nparts = 3; _ } -> ()
  | _ -> Alcotest.fail "expected an scm body"

let prop_ccl_scm_any_bands =
  QCheck.Test.make ~name:"scm CCL equals direct labelling for any band count"
    ~count:30
    QCheck.(triple (int_bound 1000) (int_range 1 8) (int_range 20 60))
    (fun (seed, nparts, size) ->
      let img = Apps.Ccl_scm.blobs_image ~seed ~nblobs:10 size size in
      QCheck.assume (nparts <= size);
      let direct = Vision.Ccl.label ~threshold:128 img in
      let table = ccl_table () in
      let result = Skel.Sem.run table (Apps.Ccl_scm.ir ~nparts) (V.Image img) in
      fst (Apps.Ccl_scm.result_summary result) = direct.Vision.Ccl.ncomponents)

(* ------------------------------------------------------------------ *)
(* Road following                                                      *)

let road_table ~width ~height () =
  let t = Skel.Funtable.create () in
  Apps.Road.register ~width ~height t;
  t

let test_road_fit_recovers_line () =
  (* Synthetic points on x = 100 + 0.5 * t (t rows from bottom). *)
  let height = 120 and width = 400 in
  let points =
    List.init 60 (fun i ->
        let y = height - 1 - i in
        (y, 100.0 +. (0.5 *. float_of_int i)))
  in
  let lane = Apps.Road.fit ~width ~height points in
  Alcotest.(check (float 0.01)) "offset" 100.0 lane.Apps.Road.offset;
  Alcotest.(check (float 0.001)) "slope" 0.5 lane.Apps.Road.slope;
  Alcotest.(check bool) "confident" true (lane.Apps.Road.confidence > 0.5)

let test_road_fit_degenerate () =
  let lane = Apps.Road.fit ~width:200 ~height:100 [] in
  Alcotest.(check (float 0.001)) "centre fallback" 100.0 lane.Apps.Road.offset;
  Alcotest.(check (float 0.0)) "no confidence" 0.0 lane.Apps.Road.confidence

let test_road_detect_rows () =
  (* A vertical bright line at x=30 in a dark strip. *)
  let strip = Vision.Image.create 64 10 in
  for y = 0 to 9 do
    Vision.Image.set strip 30 y 255
  done;
  let points = Apps.Road.detect_rows strip ~y0:100 in
  Alcotest.(check int) "every row" 10 (List.length points);
  List.iter
    (fun (y, x) ->
      Alcotest.(check bool) "row offset applied" true (y >= 100 && y < 110);
      Alcotest.(check (float 0.01)) "line position" 30.0 x)
    points

let test_road_pipeline_stays_centred () =
  let width = 256 and height = 256 in
  let table = road_table ~width ~height () in
  let prog = Apps.Road.ir ~frames:6 ~nstrips:4 () in
  match Skel.Sem.run table prog (Apps.Road.input_value ~width ~height) with
  | V.Tuple [ _; V.List outs ] ->
      List.iter
        (fun lane_v ->
          let lane = Apps.Road.lane_of_value lane_v in
          Alcotest.(check bool) "offset near centre" true
            (abs_float (lane.Apps.Road.offset -. 128.0) < 40.0))
        outs
  | v -> Alcotest.failf "unexpected %s" (V.to_string v)

let test_road_parallel_equals_sequential () =
  let width = 256 and height = 256 in
  let prog = Apps.Road.ir ~frames:4 ~nstrips:4 () in
  let input = Apps.Road.input_value ~width ~height in
  let seq = Skel.Sem.run (road_table ~width ~height ()) prog input in
  let table = road_table ~width ~height () in
  let g = Procnet.Expand.expand table prog in
  let arch = Archi.ring 5 in
  let r =
    Executive.run ~table ~arch
      ~placement:(Syndex.Place.canonical g arch)
      ~graph:g ~frames:4 ~input ()
  in
  Alcotest.(check bool) "equal" true (V.equal seq r.Executive.value)

let test_road_lane_roundtrip () =
  let lane = { Apps.Road.offset = 12.5; slope = -0.25; confidence = 0.8 } in
  let lane' = Apps.Road.lane_of_value (Apps.Road.lane_to_value lane) in
  Alcotest.(check (float 0.0)) "offset" lane.Apps.Road.offset lane'.Apps.Road.offset;
  Alcotest.(check (float 0.0)) "slope" lane.Apps.Road.slope lane'.Apps.Road.slope

(* ------------------------------------------------------------------ *)
(* Quadtree via tf                                                     *)

let quad_table () =
  let t = Skel.Funtable.create () in
  Apps.Quadtree.register t;
  t

let leaves_cover_exactly ~width ~height leaves =
  let covered = Array.make (width * height) 0 in
  List.iter
    (fun (r : Apps.Quadtree.region) ->
      for y = r.Apps.Quadtree.y to r.Apps.Quadtree.y + r.Apps.Quadtree.h - 1 do
        for x = r.Apps.Quadtree.x to r.Apps.Quadtree.x + r.Apps.Quadtree.w - 1 do
          covered.((y * width) + x) <- covered.((y * width) + x) + 1
        done
      done)
    leaves;
  Array.for_all (( = ) 1) covered

let test_quadtree_flat_image_single_leaf () =
  let img = Vision.Image.create ~init:50 64 64 in
  let table = quad_table () in
  let result = Skel.Sem.run table (Apps.Quadtree.ir ~nworkers:2) (V.Image img) in
  match Apps.Quadtree.leaves_of_value result with
  | [ leaf ] ->
      Alcotest.(check int) "whole image" (64 * 64)
        (leaf.Apps.Quadtree.w * leaf.Apps.Quadtree.h);
      Alcotest.(check (float 0.01)) "mean" 50.0 leaf.Apps.Quadtree.mean
  | leaves -> Alcotest.failf "expected 1 leaf, got %d" (List.length leaves)

let test_quadtree_splits_heterogeneous () =
  let img = Vision.Image.create 64 64 in
  (* left half dark, right half bright -> must split *)
  Vision.Image.iter (fun x y _ -> Vision.Image.set img x y (if x < 32 then 10 else 200)) img;
  let table = quad_table () in
  let result = Skel.Sem.run table (Apps.Quadtree.ir ~nworkers:3) (V.Image img) in
  let leaves = Apps.Quadtree.leaves_of_value result in
  Alcotest.(check bool) "splits" true (List.length leaves > 1);
  Alcotest.(check bool) "tiles exactly" true
    (leaves_cover_exactly ~width:64 ~height:64 leaves)

let test_quadtree_parallel_equals_sequential () =
  let img = Apps.Ccl_scm.blobs_image ~seed:14 ~nblobs:6 64 64 in
  let prog = Apps.Quadtree.ir ~nworkers:4 in
  let seq = Skel.Sem.run (quad_table ()) prog (V.Image img) in
  let table = quad_table () in
  let g = Procnet.Expand.expand table prog in
  let arch = Archi.ring 5 in
  let r =
    Executive.run ~table ~arch
      ~placement:(Syndex.Place.canonical g arch)
      ~graph:g ~frames:1 ~input:(V.Image img) ()
  in
  Alcotest.(check bool) "equal" true (V.equal seq r.Executive.value)

let prop_quadtree_tiles_exactly =
  QCheck.Test.make ~name:"quadtree leaves tile the image exactly" ~count:25
    QCheck.(pair (int_bound 1000) (int_range 16 64))
    (fun (seed, size) ->
      let img = Apps.Ccl_scm.blobs_image ~seed ~nblobs:5 size size in
      let table = quad_table () in
      let result = Skel.Sem.run table (Apps.Quadtree.ir ~nworkers:2) (V.Image img) in
      leaves_cover_exactly ~width:size ~height:size
        (Apps.Quadtree.leaves_of_value result))

let () =
  Alcotest.run "apps"
    [
      ( "ccl-scm",
        [
          Alcotest.test_case "labelling roundtrip" `Quick test_labelling_roundtrip;
          Alcotest.test_case "decode rejects corrupt" `Quick test_decode_rejects_corrupt;
          Alcotest.test_case "matches direct labelling" `Quick test_ccl_scm_matches_direct;
          Alcotest.test_case "parallel equals sequential" `Quick test_ccl_scm_parallel_equals_sequential;
          Alcotest.test_case "split rejects short image" `Quick test_ccl_split_rejects_short_image;
          Alcotest.test_case "source compiles" `Quick test_ccl_source_compiles;
          QCheck_alcotest.to_alcotest prop_ccl_scm_any_bands;
        ] );
      ( "road",
        [
          Alcotest.test_case "fit recovers line" `Quick test_road_fit_recovers_line;
          Alcotest.test_case "fit degenerate" `Quick test_road_fit_degenerate;
          Alcotest.test_case "detect rows" `Quick test_road_detect_rows;
          Alcotest.test_case "pipeline stays centred" `Quick test_road_pipeline_stays_centred;
          Alcotest.test_case "parallel equals sequential" `Quick test_road_parallel_equals_sequential;
          Alcotest.test_case "lane roundtrip" `Quick test_road_lane_roundtrip;
        ] );
      ( "quadtree",
        [
          Alcotest.test_case "flat image single leaf" `Quick test_quadtree_flat_image_single_leaf;
          Alcotest.test_case "splits heterogeneous" `Quick test_quadtree_splits_heterogeneous;
          Alcotest.test_case "parallel equals sequential" `Quick test_quadtree_parallel_equals_sequential;
          QCheck_alcotest.to_alcotest prop_quadtree_tiles_exactly;
        ] );
    ]
