(* Tests for the SynDEx-style mapper: DAG derivation, HEFT scheduling,
   fixed placements, schedule validation and deadlock freedom. *)

module G = Procnet.Graph
module V = Skel.Value

let tracking_like_graph ?(nworkers = 4) () =
  Procnet.Expand.expand_stage
    (Skel.Ir.Itermem
       {
         input = "in";
         loop =
           Skel.Ir.Pipe
             [
               Skel.Ir.Seq "pre";
               Skel.Ir.Df { nworkers; comp = "c"; acc = "a"; init = V.Int 0 };
               Skel.Ir.Seq "post";
             ];
         output = "out";
         init = V.Int 0;
       })

let cost = Syndex.Cost.make ()

let test_dag_splits_masters_and_mem () =
  let g = tracking_like_graph () in
  let dag = Syndex.Dag.of_graph cost g in
  let parts =
    Array.to_list dag.Syndex.Dag.ops |> List.map (fun op -> op.Syndex.Dag.part)
  in
  let count p = List.length (List.filter (( = ) p) parts) in
  Alcotest.(check int) "one dispatch" 1 (count Syndex.Dag.Dispatch);
  Alcotest.(check int) "one collect" 1 (count Syndex.Dag.Collect);
  Alcotest.(check int) "one emit" 1 (count Syndex.Dag.Emit);
  Alcotest.(check int) "one store" 1 (count Syndex.Dag.Store);
  Alcotest.(check int) "colocation pairs" 2 (List.length dag.Syndex.Dag.colocated)

let test_dag_topological_order () =
  let g = tracking_like_graph () in
  let dag = Syndex.Dag.of_graph cost g in
  let order = Syndex.Dag.topological_order dag in
  Alcotest.(check int) "covers all ops" (Array.length dag.Syndex.Dag.ops)
    (List.length order);
  (* position map respects every dependency *)
  let pos = Hashtbl.create 16 in
  List.iteri (fun i op -> Hashtbl.replace pos op i) order;
  List.iter
    (fun (d : Syndex.Dag.dep) ->
      Alcotest.(check bool) "edge forward" true
        (Hashtbl.find pos d.Syndex.Dag.src_op < Hashtbl.find pos d.Syndex.Dag.dst_op))
    dag.Syndex.Dag.deps

let test_heft_schedule_validates () =
  let g = tracking_like_graph () in
  List.iter
    (fun arch ->
      let s = Syndex.Heft.map cost arch g in
      (match Syndex.Schedule.validate s with
      | Ok () -> ()
      | Error m -> Alcotest.failf "invalid schedule on %s: %s" (Archi.name arch) m);
      Alcotest.(check bool)
        (Printf.sprintf "deadlock-free on %s" (Archi.name arch))
        true (Syndex.Schedule.deadlock_free s);
      Alcotest.(check bool) "positive makespan" true (s.Syndex.Schedule.makespan > 0.0))
    [ Archi.ring 1; Archi.ring 4; Archi.ring 8; Archi.star 5; Archi.grid 2 3;
      Archi.fully_connected 6 ]

let test_heft_colocation_respected () =
  let g = tracking_like_graph () in
  let s = Syndex.Heft.map cost (Archi.ring 6) g in
  (* all ops of a node share its placed processor (validate checks this,
     but assert directly for masters). *)
  List.iter
    (fun (op : Syndex.Schedule.op_slot) ->
      Alcotest.(check int) "op on placed proc"
        s.Syndex.Schedule.placement.(op.Syndex.Schedule.node)
        op.Syndex.Schedule.proc)
    s.Syndex.Schedule.ops

let test_canonical_placement () =
  let g = tracking_like_graph ~nworkers:4 () in
  let arch = Archi.ring 5 in
  let placement = Syndex.Place.canonical g arch in
  Array.iter
    (fun (nd : G.node) ->
      match nd.G.kind with
      | G.DfWorker _ ->
          Alcotest.(check bool) "worker spread" true (placement.(nd.G.id) >= 0)
      | G.DfMaster _ | G.Mem _ | G.Join | G.Fork | G.Input _ | G.Output _ ->
          Alcotest.(check int) "control on P0" 0 placement.(nd.G.id)
      | _ -> ())
    (G.nodes g);
  (* the four workers land on P1..P4, one each *)
  let worker_procs =
    Array.to_list (G.nodes g)
    |> List.filter_map (fun (nd : G.node) ->
           match nd.G.kind with G.DfWorker _ -> Some placement.(nd.G.id) | _ -> None)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "fig-1 layout" [ 1; 2; 3; 4 ] worker_procs

let test_of_placement_validates () =
  let g = tracking_like_graph () in
  let arch = Archi.ring 5 in
  List.iter
    (fun placement ->
      let s = Syndex.Place.of_placement cost arch g placement in
      (match Syndex.Schedule.validate s with
      | Ok () -> ()
      | Error m -> Alcotest.failf "invalid: %s" m);
      Alcotest.(check bool) "deadlock-free" true (Syndex.Schedule.deadlock_free s))
    [ Syndex.Place.canonical g arch; Syndex.Place.round_robin g arch ]

let test_of_placement_rejects_bad_input () =
  let g = tracking_like_graph () in
  let arch = Archi.ring 3 in
  Alcotest.(check bool) "wrong length" true
    (try ignore (Syndex.Place.of_placement cost arch g [| 0 |]); false
     with Invalid_argument _ -> true);
  let p = Array.make (G.nnodes g) 99 in
  Alcotest.(check bool) "missing processor" true
    (try ignore (Syndex.Place.of_placement cost arch g p); false
     with Invalid_argument _ -> true)

let test_single_processor_has_no_comms () =
  let g = tracking_like_graph () in
  let s = Syndex.Heft.map cost (Archi.ring 1) g in
  Alcotest.(check int) "no communications" 0 (List.length s.Syndex.Schedule.comms)

let test_heft_beats_or_matches_single_proc () =
  (* With parallel work available, more processors should not predict a
     (much) longer makespan than one processor. *)
  let fn_cycles name = if name = "c" then Some 200_000.0 else None in
  let heavy = Syndex.Cost.make ~fn_cycles () in
  let g = tracking_like_graph ~nworkers:6 () in
  let m1 = (Syndex.Heft.map heavy (Archi.ring 1) g).Syndex.Schedule.makespan in
  let m8 = (Syndex.Heft.map heavy (Archi.ring 8) g).Syndex.Schedule.makespan in
  Alcotest.(check bool) "parallel is predicted faster" true (m8 < m1)

let test_link_orders_cover_comms () =
  let g = tracking_like_graph () in
  let s = Syndex.Heft.map cost (Archi.ring 8) g in
  let per_link = Syndex.Schedule.link_orders s in
  let total_hops =
    List.fold_left (fun acc (_, comms) -> acc + List.length comms) 0 per_link
  in
  let expected_hops =
    List.fold_left
      (fun acc (c : Syndex.Schedule.comm_slot) ->
        acc + List.length c.Syndex.Schedule.route - 1)
      0 s.Syndex.Schedule.comms
  in
  Alcotest.(check int) "every hop appears once" expected_hops total_hops

let test_cost_model_defaults () =
  let model = Syndex.Cost.make ~control_cycles:7.0 ~default_fn_cycles:9.0 () in
  let g = tracking_like_graph () in
  Array.iter
    (fun (nd : G.node) ->
      let c = model.Syndex.Cost.node_cycles nd in
      match nd.G.kind with
      | G.Join | G.Fork | G.Mem _ -> Alcotest.(check (float 0.0)) "control" 7.0 c
      | _ -> Alcotest.(check (float 0.0)) "function" 9.0 c)
    (G.nodes g)

let test_node_function () =
  Alcotest.(check (option string)) "worker fn" (Some "c")
    (Syndex.Cost.node_function { G.id = 0; kind = G.DfWorker { comp = "c" }; label = "" });
  Alcotest.(check (option string)) "join has none" None
    (Syndex.Cost.node_function { G.id = 0; kind = G.Join; label = "" })

let prop_heft_always_valid =
  QCheck.Test.make ~name:"HEFT schedules validate on random configs" ~count:60
    QCheck.(triple (int_range 1 8) (int_range 1 8) (int_range 1 10))
    (fun (nworkers, nparts, nprocs) ->
      let g =
        Procnet.Expand.expand_stage
          (Skel.Ir.Pipe
             [
               Skel.Ir.Scm { nparts; split = "s"; compute = "c"; merge = "m" };
               Skel.Ir.Df { nworkers; comp = "c2"; acc = "a"; init = V.Int 0 };
             ])
      in
      let s = Syndex.Heft.map cost (Archi.ring nprocs) g in
      Result.is_ok (Syndex.Schedule.validate s) && Syndex.Schedule.deadlock_free s)

let () =
  Alcotest.run "syndex"
    [
      ( "dag",
        [
          Alcotest.test_case "splits masters and mem" `Quick test_dag_splits_masters_and_mem;
          Alcotest.test_case "topological order" `Quick test_dag_topological_order;
        ] );
      ( "heft",
        [
          Alcotest.test_case "schedules validate" `Quick test_heft_schedule_validates;
          Alcotest.test_case "colocation respected" `Quick test_heft_colocation_respected;
          Alcotest.test_case "single proc no comms" `Quick test_single_processor_has_no_comms;
          Alcotest.test_case "parallel predicted faster" `Quick test_heft_beats_or_matches_single_proc;
          QCheck_alcotest.to_alcotest prop_heft_always_valid;
        ] );
      ( "placements",
        [
          Alcotest.test_case "canonical layout" `Quick test_canonical_placement;
          Alcotest.test_case "of_placement validates" `Quick test_of_placement_validates;
          Alcotest.test_case "of_placement rejects bad input" `Quick test_of_placement_rejects_bad_input;
        ] );
      ( "model",
        [
          Alcotest.test_case "link orders cover comms" `Quick test_link_orders_cover_comms;
          Alcotest.test_case "cost defaults" `Quick test_cost_model_defaults;
          Alcotest.test_case "node_function" `Quick test_node_function;
        ] );
    ]
