(* Tests for the vehicle-tracking application: detection, prediction,
   windows, value encodings, and the full pipeline against the synthetic
   ground truth. *)

module V = Skel.Value
module S = Vision.Scene

let small_scene =
  { S.default_params with S.width = 256; height = 256; nvehicles = 2 }

let config =
  { Tracking.Funcs.default_config with Tracking.Funcs.scene = small_scene; nproc = 4 }

let test_mark_roundtrip () =
  let m =
    { Tracking.Mark.x = 1.5; y = 2.5; area = 12; min_x = 0; min_y = 1; max_x = 3; max_y = 4 }
  in
  Alcotest.(check bool) "roundtrip" true
    (Tracking.Mark.equal m (Tracking.Mark.of_value (Tracking.Mark.to_value m)))

let test_state_roundtrip () =
  let st =
    {
      Tracking.Track_state.mode = Tracking.Track_state.Tracking;
      tracks =
        [
          {
            Tracking.Track_state.marks =
              [
                { Tracking.Mark.x = 1.0; y = 2.0; area = 9; min_x = 0; min_y = 0; max_x = 2; max_y = 2 };
              ];
            vx = 0.5;
            vy = -0.5;
          };
        ];
      frame = 3;
    }
  in
  Alcotest.(check bool) "roundtrip" true
    (Tracking.Track_state.equal st
       (Tracking.Track_state.of_value (Tracking.Track_state.to_value st)))

let test_state_rejects_bad_mode () =
  let v =
    V.Record [ ("mode", V.Str "wat"); ("tracks", V.List []); ("frame", V.Int 0) ]
  in
  Alcotest.(check bool) "bad mode" true
    (try ignore (Tracking.Track_state.of_value v); false with V.Type_error _ -> true)

let test_detect_finds_marks () =
  let img = S.frame small_scene 4 in
  let marks = Tracking.Detector.detect ~origin:(0, 0) img in
  Alcotest.(check int) "6 marks for 2 vehicles" 6 (List.length marks);
  (* each detected mark is near a ground-truth centre *)
  let truth = S.ground_truth_marks small_scene 4 in
  List.iter
    (fun (m : Tracking.Mark.t) ->
      let close =
        List.exists
          (fun (tx, ty) ->
            sqrt (((m.Tracking.Mark.x -. tx) ** 2.0) +. ((m.Tracking.Mark.y -. ty) ** 2.0))
            < 3.0)
          truth
      in
      Alcotest.(check bool) "near truth" true close)
    marks

let test_detect_in_window_offsets () =
  let img = S.frame small_scene 4 in
  let all = Tracking.Detector.detect ~origin:(0, 0) img in
  let m = List.hd all in
  (* extract a window around the mark and detect inside it *)
  let win =
    Vision.Window.make
      ~x:(m.Tracking.Mark.min_x - 5)
      ~y:(m.Tracking.Mark.min_y - 5)
      ~w:(Tracking.Mark.width m + 10)
      ~h:(Tracking.Mark.height m + 10)
  in
  let sub = Vision.Window.extract img win in
  let found =
    Tracking.Detector.detect
      ~origin:(win.Vision.Window.x, win.Vision.Window.y)
      sub
  in
  Alcotest.(check bool) "found in window" true (List.length found >= 1);
  let f = List.hd found in
  Alcotest.(check (float 1.0)) "same absolute x" m.Tracking.Mark.x f.Tracking.Mark.x

let test_cluster_groups_by_vehicle () =
  let img = S.frame small_scene 10 in
  let marks = Tracking.Detector.detect ~origin:(0, 0) img in
  let groups = Tracking.Predictor.cluster marks in
  let full = List.filter (fun g -> List.length g = 3) groups in
  Alcotest.(check int) "2 full vehicles" 2 (List.length full)

let test_update_modes () =
  let init = Tracking.Track_state.initial in
  (* no marks: stays in reinit *)
  let st = Tracking.Predictor.update init [] in
  Alcotest.(check bool) "reinit on no marks" true
    (st.Tracking.Track_state.mode = Tracking.Track_state.Reinit);
  (* a full vehicle: switches to tracking *)
  let img = S.frame small_scene 2 in
  let marks = Tracking.Detector.detect ~origin:(0, 0) img in
  let st = Tracking.Predictor.update init marks in
  Alcotest.(check bool) "tracking on full vehicle" true
    (st.Tracking.Track_state.mode = Tracking.Track_state.Tracking);
  Alcotest.(check int) "two tracks" 2 (List.length st.Tracking.Track_state.tracks);
  Alcotest.(check int) "frame advanced" 1 st.Tracking.Track_state.frame

let test_update_estimates_velocity () =
  let mk x =
    { Tracking.Mark.x; y = 50.0; area = 20; min_x = int_of_float x - 2; min_y = 48;
      max_x = int_of_float x + 2; max_y = 52 }
  in
  let group_at x = [ mk x; mk (x +. 20.0); mk (x +. 10.0) ] in
  let st1 = Tracking.Predictor.update Tracking.Track_state.initial (group_at 100.0) in
  let st2 = Tracking.Predictor.update st1 (group_at 105.0) in
  match st2.Tracking.Track_state.tracks with
  | [ tr ] -> Alcotest.(check (float 0.01)) "vx" 5.0 tr.Tracking.Track_state.vx
  | _ -> Alcotest.fail "expected one track"

let test_windows_reinit_tiles () =
  let wins =
    Tracking.Predictor.windows_for ~nproc:4 ~width:256 ~height:256
      Tracking.Track_state.initial
  in
  Alcotest.(check int) "nproc tiles" 4 (List.length wins)

let test_windows_tracking_covers_marks () =
  let img = S.frame small_scene 6 in
  let marks = Tracking.Detector.detect ~origin:(0, 0) img in
  let st = Tracking.Predictor.update Tracking.Track_state.initial marks in
  let wins = Tracking.Predictor.windows_for ~nproc:4 ~width:256 ~height:256 st in
  Alcotest.(check int) "3 windows per vehicle" 6 (List.length wins);
  (* the next frame's marks fall inside the predicted windows *)
  let next = Tracking.Detector.detect ~origin:(0, 0) (S.frame small_scene 7) in
  List.iter
    (fun (m : Tracking.Mark.t) ->
      let covered =
        List.exists
          (fun w ->
            Vision.Window.contains w
              (int_of_float m.Tracking.Mark.x)
              (int_of_float m.Tracking.Mark.y))
          wins
      in
      Alcotest.(check bool) "next marks covered" true covered)
    next

let test_full_pipeline_tracks_vehicles () =
  let frames = 6 in
  let table = Tracking.Funcs.table config in
  let prog = Tracking.Funcs.ir ~frames config in
  let input = Tracking.Funcs.input_value config in
  let result = Skel.Sem.run table prog input in
  match result with
  | V.Tuple [ state_v; V.List outputs ] ->
      let final = Tracking.Track_state.of_value state_v in
      Alcotest.(check bool) "ends in tracking mode" true
        (final.Tracking.Track_state.mode = Tracking.Track_state.Tracking);
      (* after the first (reinit) frame, all 6 marks are found every frame *)
      List.iteri
        (fun i out ->
          let n = List.length (V.to_list out) in
          if i > 0 then Alcotest.(check int) (Printf.sprintf "frame %d marks" i) 6 n)
        outputs
  | v -> Alcotest.failf "unexpected result %s" (V.to_string v)

let test_pipeline_parallel_equals_sequential () =
  let frames = 4 in
  let prog = Tracking.Funcs.ir ~frames config in
  let input = Tracking.Funcs.input_value config in
  let seq = Skel.Sem.run (Tracking.Funcs.table config) prog input in
  let table = Tracking.Funcs.table config in
  let g = Procnet.Expand.expand table prog in
  let arch = Archi.ring 5 in
  let r =
    Executive.run ~table ~arch
      ~placement:(Syndex.Place.canonical g arch)
      ~graph:g ~frames ~input ()
  in
  Alcotest.(check bool) "equal" true (V.equal seq r.Executive.value)

let test_occlusion_forces_reinit () =
  let occ_scene = { small_scene with S.nvehicles = 1; occlusion_period = 4 } in
  let occ_config = { config with Tracking.Funcs.scene = occ_scene } in
  let table = Tracking.Funcs.table occ_config in
  let prog = Tracking.Funcs.ir ~frames:8 occ_config in
  match Skel.Sem.run table prog (Tracking.Funcs.input_value occ_config) with
  | V.Tuple [ _; V.List outputs ] ->
      (* While occluded (frames where t mod 4 < ... per scene rule the
         vehicle hides), no marks are visible, so some frames yield zero
         marks. *)
      let empties =
        List.length (List.filter (fun o -> V.to_list o = []) outputs)
      in
      Alcotest.(check bool) "some frames lose the vehicle" true (empties > 0)
  | v -> Alcotest.failf "unexpected result %s" (V.to_string v)

let test_source_compiles_and_matches_embedded () =
  let frames = 3 in
  let table1 = Tracking.Funcs.table config in
  let compiled =
    Skipper_lib.Pipeline.compile_source ~frames ~table:table1
      (Tracking.Funcs.source config)
  in
  let via_source =
    Skipper_lib.Pipeline.emulate compiled (Option.get compiled.Skipper_lib.Pipeline.input)
  in
  let via_embedded =
    Skel.Sem.run (Tracking.Funcs.table config)
      (Tracking.Funcs.ir ~frames config)
      (Tracking.Funcs.input_value config)
  in
  Alcotest.(check bool) "front-end equals embedded" true
    (V.equal via_source via_embedded)

let test_cost_models_scale_with_area () =
  let table = Tracking.Funcs.table config in
  let small_item =
    V.Record [ ("x", V.Int 0); ("y", V.Int 0); ("pixels", V.Image (Vision.Image.create 10 10)) ]
  in
  let big_item =
    V.Record [ ("x", V.Int 0); ("y", V.Int 0); ("pixels", V.Image (Vision.Image.create 100 100)) ]
  in
  Alcotest.(check bool) "detect cost grows" true
    (Skel.Funtable.cost table "detect_mark" big_item
    > Skel.Funtable.cost table "detect_mark" small_item)

let prop_detection_robust_across_frames =
  QCheck.Test.make ~name:"marks detected on any frame" ~count:40
    (QCheck.int_bound 200) (fun t ->
      (* Two vehicles' marks can momentarily overlap into one component on
         the small 256x256 scene (frames ~84-92), so 5 detections are also
         legitimate. *)
      let marks = Tracking.Detector.detect ~origin:(0, 0) (S.frame small_scene t) in
      let n = List.length marks in
      n = 5 || n = 6)


let test_three_vehicles () =
  let scene3 = { small_scene with S.nvehicles = 3 } in
  let cfg3 = { config with Tracking.Funcs.scene = scene3 } in
  let table = Tracking.Funcs.table cfg3 in
  let prog = Tracking.Funcs.ir ~frames:3 cfg3 in
  match Skel.Sem.run table prog (Tracking.Funcs.input_value cfg3) with
  | V.Tuple [ state_v; V.List outputs ] ->
      let final = Tracking.Track_state.of_value state_v in
      Alcotest.(check int) "three tracks" 3
        (List.length final.Tracking.Track_state.tracks);
      (* nine marks once locked on *)
      (match List.rev outputs with
      | last :: _ -> Alcotest.(check int) "nine marks" 9 (List.length (V.to_list last))
      | [] -> Alcotest.fail "no outputs")
  | v -> Alcotest.failf "unexpected %s" (V.to_string v)

let test_occlusion_recovery () =
  (* The vehicle disappears then reappears: the tracker must fall back to
     reinitialisation and then lock on again. *)
  let occ_scene = { small_scene with S.nvehicles = 1; occlusion_period = 6 } in
  let scene_frames = 12 in
  let state = ref Tracking.Track_state.initial in
  let modes = ref [] in
  for i = 0 to scene_frames - 1 do
    let img = Vision.Scene.frame occ_scene i in
    let windows =
      Tracking.Predictor.windows_for ~nproc:4 ~width:256 ~height:256 !state
    in
    let marks =
      List.concat_map
        (fun w ->
          Tracking.Detector.detect
            ~origin:(w.Vision.Window.x, w.Vision.Window.y)
            (Vision.Window.extract img w))
        windows
    in
    state := Tracking.Predictor.update !state marks;
    modes := !state.Tracking.Track_state.mode :: !modes
  done;
  let modes = List.rev !modes in
  Alcotest.(check bool) "loses the vehicle at some point" true
    (List.exists (( = ) Tracking.Track_state.Reinit) modes);
  Alcotest.(check bool) "re-acquires it" true
    (match List.rev modes with
    | last :: _ -> last = Tracking.Track_state.Tracking
    | [] -> false);
  (* and specifically: a Reinit mode is followed later by Tracking *)
  let rec recovered = function
    | Tracking.Track_state.Reinit :: rest ->
        List.exists (( = ) Tracking.Track_state.Tracking) rest
    | _ :: rest -> recovered rest
    | [] -> false
  in
  Alcotest.(check bool) "reinit then tracking" true (recovered modes)

let () =
  Alcotest.run "tracking"
    [
      ( "encodings",
        [
          Alcotest.test_case "mark roundtrip" `Quick test_mark_roundtrip;
          Alcotest.test_case "state roundtrip" `Quick test_state_roundtrip;
          Alcotest.test_case "bad mode rejected" `Quick test_state_rejects_bad_mode;
        ] );
      ( "detection",
        [
          Alcotest.test_case "finds marks" `Quick test_detect_finds_marks;
          Alcotest.test_case "window offsets" `Quick test_detect_in_window_offsets;
          QCheck_alcotest.to_alcotest prop_detection_robust_across_frames;
        ] );
      ( "prediction",
        [
          Alcotest.test_case "cluster groups by vehicle" `Quick test_cluster_groups_by_vehicle;
          Alcotest.test_case "mode transitions" `Quick test_update_modes;
          Alcotest.test_case "velocity estimation" `Quick test_update_estimates_velocity;
          Alcotest.test_case "reinit tiles" `Quick test_windows_reinit_tiles;
          Alcotest.test_case "tracking windows cover next frame" `Quick test_windows_tracking_covers_marks;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "tracks vehicles" `Quick test_full_pipeline_tracks_vehicles;
          Alcotest.test_case "parallel equals sequential" `Quick test_pipeline_parallel_equals_sequential;
          Alcotest.test_case "occlusion forces reinit" `Quick test_occlusion_forces_reinit;
          Alcotest.test_case "three vehicles" `Quick test_three_vehicles;
          Alcotest.test_case "occlusion recovery" `Quick test_occlusion_recovery;
          Alcotest.test_case "source matches embedded" `Quick test_source_compiles_and_matches_embedded;
          Alcotest.test_case "cost models scale" `Quick test_cost_models_scale_with_area;
        ] );
    ]
