(* Tests for Vision.Image: accessors, sub/blit clipping, band splitting and
   PGM round trips. *)

module I = Vision.Image

let random_image rng w h =
  let img = I.create w h in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      I.set img x y (Support.Prng.int rng 256)
    done
  done;
  img

let test_create_and_fill () =
  let img = I.create ~init:7 4 3 in
  Alcotest.(check int) "width" 4 (I.width img);
  Alcotest.(check int) "height" 3 (I.height img);
  Alcotest.(check int) "size" 12 (I.size img);
  Alcotest.(check int) "init value" 7 (I.get img 2 1);
  I.fill img 250;
  Alcotest.(check int) "filled" 250 (I.get img 0 0)

let test_create_rejects_bad_args () =
  Alcotest.check_raises "zero width"
    (Invalid_argument "Image.create: non-positive dimensions") (fun () ->
      ignore (I.create 0 5));
  Alcotest.check_raises "bad init"
    (Invalid_argument "Image.create: init out of range") (fun () ->
      ignore (I.create ~init:300 5 5))

let test_get_set_bounds () =
  let img = I.create 4 4 in
  Alcotest.(check bool) "in bounds" true (I.in_bounds img 3 3);
  Alcotest.(check bool) "out of bounds" false (I.in_bounds img 4 0);
  Alcotest.(check (option int)) "get_opt inside" (Some 0) (I.get_opt img 1 1);
  Alcotest.(check (option int)) "get_opt outside" None (I.get_opt img (-1) 0);
  (try
     ignore (I.get img 4 0);
     Alcotest.fail "expected exception"
   with Invalid_argument _ -> ())

let test_set_clamps () =
  let img = I.create 2 2 in
  I.set img 0 0 999;
  Alcotest.(check int) "clamped high" 255 (I.get img 0 0);
  I.set img 0 0 (-5);
  Alcotest.(check int) "clamped low" 0 (I.get img 0 0)

let test_sub_contents () =
  let img = I.create 8 8 in
  I.iter (fun x y _ -> I.set img x y ((x * 10) + y)) img;
  let sub = I.sub img ~x:2 ~y:3 ~w:3 ~h:2 in
  Alcotest.(check int) "sub width" 3 (I.width sub);
  Alcotest.(check int) "sub height" 2 (I.height sub);
  Alcotest.(check int) "sub (0,0)" (I.get img 2 3) (I.get sub 0 0);
  Alcotest.(check int) "sub (2,1)" (I.get img 4 4) (I.get sub 2 1)

let test_sub_clips () =
  let img = I.create ~init:9 4 4 in
  let sub = I.sub img ~x:2 ~y:2 ~w:10 ~h:10 in
  Alcotest.(check int) "clipped width" 2 (I.width sub);
  Alcotest.(check int) "clipped height" 2 (I.height sub);
  Alcotest.check_raises "empty rect" (Invalid_argument "Image.sub: empty rectangle")
    (fun () -> ignore (I.sub img ~x:10 ~y:10 ~w:2 ~h:2))

let test_blit () =
  let src = I.create ~init:200 2 2 in
  let dst = I.create 5 5 in
  I.blit ~src ~dst ~x:3 ~y:3;
  Alcotest.(check int) "blitted" 200 (I.get dst 3 3);
  Alcotest.(check int) "outside blit" 0 (I.get dst 2 2);
  (* Clipped blit must not raise. *)
  I.blit ~src ~dst ~x:4 ~y:4;
  Alcotest.(check int) "partially blitted" 200 (I.get dst 4 4)

let test_map_and_fold () =
  let img = I.create ~init:10 3 3 in
  let doubled = I.map (fun v -> v * 2) img in
  Alcotest.(check int) "mapped" 20 (I.get doubled 1 1);
  Alcotest.(check int) "original untouched" 10 (I.get img 1 1);
  Alcotest.(check int) "fold sum" (9 * 10) (I.fold ( + ) 0 img)

let test_mapi () =
  let img = I.create 3 2 in
  let coded = I.mapi (fun x y _ -> x + (10 * y)) img in
  Alcotest.(check int) "mapi (2,1)" 12 (I.get coded 2 1)

let test_row_bands_partition () =
  let img = I.create 4 10 in
  let bands = I.row_bands img 3 in
  Alcotest.(check int) "3 bands" 3 (List.length bands);
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 bands in
  Alcotest.(check int) "covers all rows" 10 total;
  let heights = List.map snd bands in
  let mn = List.fold_left min max_int heights and mx = List.fold_left max 0 heights in
  Alcotest.(check bool) "balanced" true (mx - mn <= 1)

let test_extract_band () =
  let img = I.create 4 6 in
  I.iter (fun x y _ -> I.set img x y y) img;
  let band = I.extract_band img (2, 3) in
  Alcotest.(check int) "band height" 3 (I.height band);
  Alcotest.(check int) "band first row" 2 (I.get band 0 0)

let test_pgm_roundtrip_binary () =
  let rng = Support.Prng.create 77 in
  let img = random_image rng 13 9 in
  match I.of_pgm (I.to_pgm img) with
  | Ok img' -> Alcotest.(check bool) "roundtrip equal" true (I.equal img img')
  | Error m -> Alcotest.fail m

let test_pgm_parses_ascii () =
  let src = "P2\n# a comment\n3 2\n255\n0 1 2\n3 4 5\n" in
  match I.of_pgm src with
  | Ok img ->
      Alcotest.(check int) "dims" 3 (I.width img);
      Alcotest.(check int) "pixel" 5 (I.get img 2 1)
  | Error m -> Alcotest.fail m

let test_pgm_rejects_garbage () =
  Alcotest.(check bool) "bad magic" true (Result.is_error (I.of_pgm "P9\n1 1\n255\nx"));
  Alcotest.(check bool) "truncated" true
    (Result.is_error (I.of_pgm "P5\n4 4\n255\nxy"));
  Alcotest.(check bool) "empty" true (Result.is_error (I.of_pgm ""))

let test_pgm_file_io () =
  let img = random_image (Support.Prng.create 3) 16 16 in
  let path = Filename.temp_file "skipper_test" ".pgm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      I.save_pgm img path;
      match I.load_pgm path with
      | Ok img' -> Alcotest.(check bool) "file roundtrip" true (I.equal img img')
      | Error m -> Alcotest.fail m)

let test_equal () =
  let a = I.create ~init:1 2 2 and b = I.create ~init:1 2 2 in
  Alcotest.(check bool) "equal" true (I.equal a b);
  I.set b 0 0 2;
  Alcotest.(check bool) "unequal content" false (I.equal a b);
  Alcotest.(check bool) "unequal dims" false (I.equal a (I.create 2 3))

let image_gen =
  QCheck.Gen.(
    map3
      (fun w h seed ->
        let rng = Support.Prng.create seed in
        random_image rng (1 + w) (1 + h))
      (int_bound 20) (int_bound 20) (int_bound 10_000))

let arbitrary_image =
  QCheck.make image_gen ~print:(fun img ->
      Printf.sprintf "<image %dx%d>" (I.width img) (I.height img))

let prop_pgm_roundtrip =
  QCheck.Test.make ~name:"PGM roundtrip for random images" ~count:100 arbitrary_image
    (fun img ->
      match I.of_pgm (I.to_pgm img) with Ok img' -> I.equal img img' | Error _ -> false)

let prop_row_bands =
  QCheck.Test.make ~name:"row bands partition the image" ~count:100
    QCheck.(pair arbitrary_image (int_range 1 16))
    (fun (img, n) ->
      let bands = I.row_bands img n in
      let total = List.fold_left (fun acc (_, r) -> acc + r) 0 bands in
      let contiguous =
        fst
          (List.fold_left
             (fun (ok, expect) (y0, r) -> (ok && y0 = expect, y0 + r))
             (true, 0) bands)
      in
      total = I.height img && contiguous)

let prop_sub_matches_source =
  QCheck.Test.make ~name:"sub pixels match the source" ~count:100
    QCheck.(pair arbitrary_image (pair (int_bound 10) (int_bound 10)))
    (fun (img, (x, y)) ->
      QCheck.assume (x < I.width img && y < I.height img);
      let sub = I.sub img ~x ~y ~w:(I.width img - x) ~h:(I.height img - y) in
      let ok = ref true in
      I.iter (fun sx sy v -> if I.get img (x + sx) (y + sy) <> v then ok := false) sub;
      !ok)

let () =
  Alcotest.run "image"
    [
      ( "basics",
        [
          Alcotest.test_case "create and fill" `Quick test_create_and_fill;
          Alcotest.test_case "create rejects bad args" `Quick test_create_rejects_bad_args;
          Alcotest.test_case "get/set bounds" `Quick test_get_set_bounds;
          Alcotest.test_case "set clamps" `Quick test_set_clamps;
          Alcotest.test_case "equal" `Quick test_equal;
        ] );
      ( "regions",
        [
          Alcotest.test_case "sub contents" `Quick test_sub_contents;
          Alcotest.test_case "sub clips" `Quick test_sub_clips;
          Alcotest.test_case "blit" `Quick test_blit;
          Alcotest.test_case "row bands partition" `Quick test_row_bands_partition;
          Alcotest.test_case "extract band" `Quick test_extract_band;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "map and fold" `Quick test_map_and_fold;
          Alcotest.test_case "mapi" `Quick test_mapi;
        ] );
      ( "pgm",
        [
          Alcotest.test_case "binary roundtrip" `Quick test_pgm_roundtrip_binary;
          Alcotest.test_case "ascii parse" `Quick test_pgm_parses_ascii;
          Alcotest.test_case "rejects garbage" `Quick test_pgm_rejects_garbage;
          Alcotest.test_case "file io" `Quick test_pgm_file_io;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_pgm_roundtrip;
          QCheck_alcotest.to_alcotest prop_row_bands;
          QCheck_alcotest.to_alcotest prop_sub_matches_source;
        ] );
    ]
