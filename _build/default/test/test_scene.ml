(* Tests for the synthetic scene generator: determinism, mark visibility and
   separability, occlusions, and the road view. *)

module S = Vision.Scene
module I = Vision.Image

let params = { S.default_params with S.width = 256; height = 256 }

let test_frame_deterministic () =
  let a = S.frame params 5 and b = S.frame params 5 in
  Alcotest.(check bool) "same frame twice" true (I.equal a b)

let test_frames_differ () =
  let a = S.frame params 0 and b = S.frame params 20 in
  Alcotest.(check bool) "motion changes frames" false (I.equal a b)

let test_marks_bright_background_dark () =
  let img = S.frame params 3 in
  let marks = S.ground_truth_marks params 3 in
  Alcotest.(check int) "3 marks per vehicle" (3 * params.S.nvehicles)
    (List.length marks);
  List.iter
    (fun (mx, my) ->
      let x = int_of_float mx and y = int_of_float my in
      if I.in_bounds img x y then
        Alcotest.(check bool) "mark centre bright" true (I.get img x y >= 220))
    marks

let test_threshold_isolates_marks () =
  let img = S.frame params 7 in
  let lab = Vision.Ccl.label ~threshold:200 img in
  (* Every component should be a mark; there are nvehicles * 3 of them. *)
  let big =
    List.filter (fun r -> r.Vision.Ccl.area >= 6) (Vision.Ccl.regions lab)
  in
  Alcotest.(check int) "component per mark" (3 * params.S.nvehicles)
    (List.length big)

let test_detection_matches_ground_truth () =
  let img = S.frame params 9 in
  let truth = S.ground_truth_marks params 9 in
  let regions =
    Vision.Ccl.detect_regions ~threshold:200 img
    |> List.filter (fun r -> r.Vision.Ccl.area >= 6)
  in
  List.iter
    (fun (mx, my) ->
      let close =
        List.exists
          (fun r ->
            let dx = r.Vision.Ccl.cx -. mx and dy = r.Vision.Ccl.cy -. my in
            sqrt ((dx *. dx) +. (dy *. dy)) < 3.0)
          regions
      in
      Alcotest.(check bool) "ground-truth mark detected nearby" true close)
    truth

let test_occlusion_hides_vehicle () =
  let p = { params with S.occlusion_period = 10; nvehicles = 1 } in
  (* frames 0-3 of each period hide vehicle 0 *)
  let hidden = S.vehicles_at p 0 and visible = S.vehicles_at p 5 in
  Alcotest.(check bool) "hidden at t=0" false (List.hd hidden).S.visible;
  Alcotest.(check bool) "visible at t=5" true (List.hd visible).S.visible;
  Alcotest.(check int) "no marks while hidden" 0
    (List.length (S.ground_truth_marks p 0))

let test_mark_radius_scales () =
  let small = { S.cx = 0.0; cy = 0.0; scale = 0.6; visible = true } in
  let large = { small with S.scale = 1.2 } in
  Alcotest.(check bool) "radius grows with scale" true
    (S.mark_radius large > S.mark_radius small)

let test_mark_centers_empty_when_hidden () =
  let v = { S.cx = 10.0; cy = 10.0; scale = 1.0; visible = false } in
  Alcotest.(check int) "no centres" 0 (List.length (S.mark_centers v))

let test_road_frame_has_lines () =
  let img = S.road_frame ~width:256 ~height:256 0 in
  (* Bright line pixels exist below the horizon, none above. *)
  let above = ref 0 and below = ref 0 in
  I.iter
    (fun _ y v -> if v >= 240 then if y < 256 / 3 then incr above else incr below)
    img;
  Alcotest.(check int) "sky has no lines" 0 !above;
  Alcotest.(check bool) "road has lines" true (!below > 100)

let test_road_frame_deterministic () =
  let a = S.road_frame ~width:128 ~height:128 4 in
  let b = S.road_frame ~width:128 ~height:128 4 in
  Alcotest.(check bool) "deterministic" true (I.equal a b)

let test_vehicles_stay_in_frame () =
  for t = 0 to 100 do
    List.iter
      (fun v ->
        Alcotest.(check bool) "x in frame" true
          (v.S.cx > 0.0 && v.S.cx < float_of_int params.S.width);
        Alcotest.(check bool) "y in frame" true
          (v.S.cy > 0.0 && v.S.cy < float_of_int params.S.height))
      (S.vehicles_at params t)
  done

let prop_noise_preserves_mark_separability =
  QCheck.Test.make ~name:"thresholding survives noise" ~count:30
    QCheck.(pair (int_bound 1000) (int_bound 50))
    (fun (seed, t) ->
      let p = { params with S.seed; noise = 4.0 } in
      let img = S.frame p t in
      let found =
        Vision.Ccl.detect_regions ~threshold:200 img
        |> List.filter (fun r -> r.Vision.Ccl.area >= 6)
        |> List.length
      in
      found = 3 * p.S.nvehicles)

let () =
  Alcotest.run "scene"
    [
      ( "vehicles",
        [
          Alcotest.test_case "frame deterministic" `Quick test_frame_deterministic;
          Alcotest.test_case "frames differ" `Quick test_frames_differ;
          Alcotest.test_case "marks bright" `Quick test_marks_bright_background_dark;
          Alcotest.test_case "threshold isolates marks" `Quick test_threshold_isolates_marks;
          Alcotest.test_case "detection matches truth" `Quick test_detection_matches_ground_truth;
          Alcotest.test_case "occlusion" `Quick test_occlusion_hides_vehicle;
          Alcotest.test_case "mark radius scales" `Quick test_mark_radius_scales;
          Alcotest.test_case "hidden vehicle has no marks" `Quick test_mark_centers_empty_when_hidden;
          Alcotest.test_case "vehicles stay in frame" `Quick test_vehicles_stay_in_frame;
        ] );
      ( "road",
        [
          Alcotest.test_case "road has lines" `Quick test_road_frame_has_lines;
          Alcotest.test_case "road deterministic" `Quick test_road_frame_deterministic;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_noise_preserves_mark_separability ]);
    ]
