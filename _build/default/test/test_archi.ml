(* Tests for architecture graphs: topologies, routing and transfer costs. *)

let test_ring_structure () =
  let r = Archi.ring 8 in
  Alcotest.(check int) "nprocs" 8 (Archi.nprocs r);
  Alcotest.(check int) "links (bidirectional)" 16 (List.length (Archi.links r));
  Alcotest.(check (list int)) "neighbours of 0" [ 1; 7 ] (Archi.neighbours r 0)

let test_ring_degenerate () =
  let r1 = Archi.ring 1 in
  Alcotest.(check int) "single proc no links" 0 (List.length (Archi.links r1));
  let r2 = Archi.ring 2 in
  Alcotest.(check int) "two procs one channel" 2 (List.length (Archi.links r2))

let test_chain_and_star_and_grid () =
  let c = Archi.chain 5 in
  Alcotest.(check int) "chain links" 8 (List.length (Archi.links c));
  let s = Archi.star 5 in
  Alcotest.(check (list int)) "star centre" [ 1; 2; 3; 4 ] (Archi.neighbours s 0);
  let g = Archi.grid 3 4 in
  Alcotest.(check int) "grid procs" 12 (Archi.nprocs g);
  (* 2*3*4 - 3 - 4 = 17 undirected edges *)
  Alcotest.(check int) "grid links" 34 (List.length (Archi.links g))

let test_fully_connected () =
  let f = Archi.fully_connected 5 in
  Alcotest.(check int) "links" (5 * 4) (List.length (Archi.links f));
  Alcotest.(check int) "all hops 1" 1 (Archi.hops f 0 4)

let test_constructors_reject_bad_sizes () =
  Alcotest.check_raises "ring 0" (Invalid_argument "Archi.ring: n <= 0") (fun () ->
      ignore (Archi.ring 0));
  Alcotest.check_raises "grid 0" (Invalid_argument "Archi.grid: non-positive dimensions")
    (fun () -> ignore (Archi.grid 0 3))

let test_route_identity () =
  let r = Archi.ring 6 in
  Alcotest.(check (list int)) "self route" [ 3 ] (Archi.route r 3 3);
  Alcotest.(check int) "self hops" 0 (Archi.hops r 3 3)

let test_route_shortest_on_ring () =
  let r = Archi.ring 8 in
  Alcotest.(check int) "adjacent" 1 (Archi.hops r 0 1);
  Alcotest.(check int) "wraps the short way" 2 (Archi.hops r 0 6);
  Alcotest.(check int) "opposite side" 4 (Archi.hops r 0 4);
  (* the route is a valid link path *)
  let path = Archi.route r 2 7 in
  let rec ok = function
    | a :: (b :: _ as rest) -> Archi.link_between r a b <> None && ok rest
    | _ -> true
  in
  Alcotest.(check bool) "route uses links" true (ok path);
  Alcotest.(check int) "route endpoints" 2 (List.hd path)

let test_route_deterministic () =
  let r = Archi.ring 9 in
  Alcotest.(check (list int)) "same route twice" (Archi.route r 1 5) (Archi.route r 1 5)

let test_route_unreachable () =
  let procs =
    Array.init 2 (fun i ->
        { Archi.id = i; pname = Printf.sprintf "P%d" i; cycle_time = 1e-8 })
  in
  let a = Archi.custom ~name:"disconnected" procs [] in
  Alcotest.(check bool) "no path raises" true
    (try ignore (Archi.route a 0 1); false with Failure _ -> true)

let test_custom_validation () =
  let procs =
    Array.init 2 (fun i ->
        { Archi.id = i; pname = Printf.sprintf "P%d" i; cycle_time = 1e-8 })
  in
  Alcotest.(check bool) "self link rejected" true
    (try ignore (Archi.custom ~name:"x" procs [ (0, 0, 1e7, 1e-6) ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "dangling endpoint rejected" true
    (try ignore (Archi.custom ~name:"x" procs [ (0, 5, 1e7, 1e-6) ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (Archi.custom ~name:"x" procs [ (0, 1, 1e7, 1e-6); (0, 1, 1e7, 1e-6) ]);
       false
     with Invalid_argument _ -> true)

let test_transfer_time_model () =
  let r = Archi.ring ~bandwidth:1e6 ~startup:1e-5 4 in
  Alcotest.(check (float 1e-12)) "local is free" 0.0 (Archi.transfer_time r 2 2 1000);
  (* one hop: startup + bytes/bw *)
  Alcotest.(check (float 1e-9)) "one hop" (1e-5 +. 1e-3) (Archi.transfer_time r 0 1 1000);
  (* two hops double it (store and forward) *)
  Alcotest.(check (float 1e-9)) "two hops" (2.0 *. (1e-5 +. 1e-3))
    (Archi.transfer_time r 0 2 1000)

let test_transfer_monotonic_in_bytes () =
  let r = Archi.ring 6 in
  Alcotest.(check bool) "more bytes cost more" true
    (Archi.transfer_time r 0 3 10_000 > Archi.transfer_time r 0 3 100)

let test_to_dot () =
  let s = Archi.to_dot (Archi.ring 3) in
  Alcotest.(check bool) "mentions processors" true (Astring.String.is_infix ~affix:"p0" s);
  Alcotest.(check bool) "digraph" true (Astring.String.is_prefix ~affix:"digraph" s)

let prop_route_symmetric_length =
  QCheck.Test.make ~name:"ring route lengths are symmetric" ~count:200
    QCheck.(triple (int_range 2 16) small_nat small_nat)
    (fun (n, a, b) ->
      let r = Archi.ring n in
      let a = a mod n and b = b mod n in
      Archi.hops r a b = Archi.hops r b a)

let prop_route_at_most_half_ring =
  QCheck.Test.make ~name:"ring routes take the short way" ~count:200
    QCheck.(triple (int_range 2 16) small_nat small_nat)
    (fun (n, a, b) ->
      let r = Archi.ring n in
      let a = a mod n and b = b mod n in
      Archi.hops r a b <= (n / 2) + (n mod 2))

let () =
  Alcotest.run "archi"
    [
      ( "topologies",
        [
          Alcotest.test_case "ring" `Quick test_ring_structure;
          Alcotest.test_case "degenerate rings" `Quick test_ring_degenerate;
          Alcotest.test_case "chain/star/grid" `Quick test_chain_and_star_and_grid;
          Alcotest.test_case "fully connected" `Quick test_fully_connected;
          Alcotest.test_case "bad sizes" `Quick test_constructors_reject_bad_sizes;
          Alcotest.test_case "custom validation" `Quick test_custom_validation;
          Alcotest.test_case "dot" `Quick test_to_dot;
        ] );
      ( "routing",
        [
          Alcotest.test_case "identity" `Quick test_route_identity;
          Alcotest.test_case "shortest on ring" `Quick test_route_shortest_on_ring;
          Alcotest.test_case "deterministic" `Quick test_route_deterministic;
          Alcotest.test_case "unreachable" `Quick test_route_unreachable;
          QCheck_alcotest.to_alcotest prop_route_symmetric_length;
          QCheck_alcotest.to_alcotest prop_route_at_most_half_ring;
        ] );
      ( "costs",
        [
          Alcotest.test_case "transfer model" `Quick test_transfer_time_model;
          Alcotest.test_case "monotonic in bytes" `Quick test_transfer_monotonic_in_bytes;
        ] );
    ]
