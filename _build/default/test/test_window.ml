(* Tests for windows of interest. *)

module W = Vision.Window
module I = Vision.Image

let test_make_rejects_empty () =
  Alcotest.check_raises "zero width"
    (Invalid_argument "Window.make: non-positive dimensions") (fun () ->
      ignore (W.make ~x:0 ~y:0 ~w:0 ~h:3))

let test_area_center_contains () =
  let w = W.make ~x:2 ~y:4 ~w:6 ~h:8 in
  Alcotest.(check int) "area" 48 (W.area w);
  let cx, cy = W.center w in
  Alcotest.(check (float 0.001)) "cx" 5.0 cx;
  Alcotest.(check (float 0.001)) "cy" 8.0 cy;
  Alcotest.(check bool) "contains corner" true (W.contains w 2 4);
  Alcotest.(check bool) "excludes far edge" false (W.contains w 8 4)

let test_clip () =
  let w = W.make ~x:(-3) ~y:(-3) ~w:10 ~h:10 in
  (match W.clip w ~width:5 ~height:5 with
  | Some c ->
      Alcotest.(check int) "clipped x" 0 c.W.x;
      Alcotest.(check int) "clipped w" 5 c.W.w
  | None -> Alcotest.fail "clip inside");
  Alcotest.(check bool) "fully outside" true
    (W.clip (W.make ~x:100 ~y:100 ~w:5 ~h:5) ~width:50 ~height:50 = None)

let test_expand () =
  let w = W.expand (W.make ~x:5 ~y:5 ~w:2 ~h:2) 3 in
  Alcotest.(check int) "x" 2 w.W.x;
  Alcotest.(check int) "w" 8 w.W.w

let test_of_region () =
  let r =
    {
      Vision.Ccl.label = 1;
      area = 4;
      cx = 1.5;
      cy = 1.5;
      min_x = 1;
      min_y = 1;
      max_x = 2;
      max_y = 2;
    }
  in
  let w = W.of_region ~margin:1 r in
  Alcotest.(check int) "x" 0 w.W.x;
  Alcotest.(check int) "w" 4 w.W.w

let test_tile_count_and_bounds () =
  List.iter
    (fun n ->
      let tiles = W.tile ~width:512 ~height:512 n in
      Alcotest.(check int) (Printf.sprintf "%d tiles" n) n (List.length tiles);
      List.iter
        (fun t ->
          Alcotest.(check bool) "tile in bounds" true
            (t.W.x >= 0 && t.W.y >= 0 && t.W.x + t.W.w <= 512 && t.W.y + t.W.h <= 512))
        tiles)
    [ 1; 2; 3; 4; 8; 9; 16 ]

let test_extract () =
  let img = I.create 8 8 in
  I.iter (fun x y _ -> I.set img x y (x + y)) img;
  let sub = W.extract img (W.make ~x:2 ~y:2 ~w:3 ~h:3) in
  Alcotest.(check int) "extract content" 4 (I.get sub 0 0);
  Alcotest.check_raises "outside" (Invalid_argument "Window.extract: window outside image")
    (fun () -> ignore (W.extract img (W.make ~x:20 ~y:20 ~w:2 ~h:2)))

let test_overlap () =
  let a = W.make ~x:0 ~y:0 ~w:4 ~h:4 and b = W.make ~x:2 ~y:2 ~w:4 ~h:4 in
  Alcotest.(check int) "overlap" 4 (W.overlap a b);
  Alcotest.(check int) "disjoint" 0 (W.overlap a (W.make ~x:10 ~y:0 ~w:2 ~h:2));
  Alcotest.(check int) "self" 16 (W.overlap a a)

let prop_tile_covers_area =
  QCheck.Test.make ~name:"tiles cover the full image area" ~count:100
    QCheck.(triple (int_range 1 20) (int_range 8 100) (int_range 8 100))
    (fun (n, width, height) ->
      let tiles = W.tile ~width ~height n in
      (* Tiles may overlap at remainder edges but must cover every pixel. *)
      let covered = Array.make_matrix width height false in
      List.iter
        (fun t ->
          for y = t.W.y to min (height - 1) (t.W.y + t.W.h - 1) do
            for x = t.W.x to min (width - 1) (t.W.x + t.W.w - 1) do
              covered.(x).(y) <- true
            done
          done)
        tiles;
      Array.for_all (fun col -> Array.for_all Fun.id col) covered)

let prop_clip_idempotent =
  QCheck.Test.make ~name:"clip is idempotent" ~count:200
    QCheck.(
      quad (int_range (-20) 60) (int_range (-20) 60) (int_range 1 40) (int_range 1 40))
    (fun (x, y, w, h) ->
      match W.clip (W.make ~x ~y ~w ~h) ~width:50 ~height:50 with
      | None -> true
      | Some c -> W.clip c ~width:50 ~height:50 = Some c)

let () =
  Alcotest.run "window"
    [
      ( "basics",
        [
          Alcotest.test_case "make rejects empty" `Quick test_make_rejects_empty;
          Alcotest.test_case "area/center/contains" `Quick test_area_center_contains;
          Alcotest.test_case "clip" `Quick test_clip;
          Alcotest.test_case "expand" `Quick test_expand;
          Alcotest.test_case "of_region" `Quick test_of_region;
          Alcotest.test_case "overlap" `Quick test_overlap;
        ] );
      ( "tiling",
        [
          Alcotest.test_case "tile count and bounds" `Quick test_tile_count_and_bounds;
          Alcotest.test_case "extract" `Quick test_extract;
          QCheck_alcotest.to_alcotest prop_tile_covers_area;
          QCheck_alcotest.to_alcotest prop_clip_idempotent;
        ] );
    ]
