(* Tests for the hand-crafted parallel baseline: it must compute the same
   marks as the skeleton-generated executive and perform comparably (the
   paper's §4 comparison). *)

module V = Skel.Value

let config =
  {
    Tracking.Funcs.default_config with
    Tracking.Funcs.scene =
      { Vision.Scene.default_params with Vision.Scene.width = 256; height = 256 };
    nproc = 4;
  }

let skeleton_run frames =
  let table = Tracking.Funcs.table config in
  let prog = Tracking.Funcs.ir ~frames config in
  let g = Procnet.Expand.expand table prog in
  let arch = Archi.ring config.Tracking.Funcs.nproc in
  Executive.run ~table ~arch
    ~placement:(Syndex.Place.canonical g arch)
    ~graph:g ~frames
    ~input:(Tracking.Funcs.input_value config)
    ()

let test_same_outputs () =
  let frames = 4 in
  let skel = skeleton_run frames in
  let hand =
    Handcoded.run ~config ~frames (Archi.ring config.Tracking.Funcs.nproc)
  in
  Alcotest.(check int) "same frame count" (List.length skel.Executive.outputs)
    (List.length hand.Handcoded.output_values);
  List.iter2
    (fun a b -> Alcotest.(check bool) "same marks" true (V.equal a b))
    skel.Executive.outputs hand.Handcoded.output_values

let test_performance_comparable () =
  (* The paper found the skeleton version's performance "similar to the
     hand-crafted version". The hand-coded one avoids the generated
     executive's extra control processes, so it should be at least as fast,
     but within a factor of two. *)
  let frames = 3 in
  let skel = skeleton_run frames in
  let hand = Handcoded.run ~config ~frames (Archi.ring config.Tracking.Funcs.nproc) in
  let skel_lat = List.nth skel.Executive.latencies (frames - 1) in
  let hand_lat = List.nth hand.Handcoded.latencies (frames - 1) in
  Alcotest.(check bool) "hand-coded not slower" true (hand_lat <= skel_lat *. 1.05);
  Alcotest.(check bool) "skeleton within 2x" true (skel_lat <= hand_lat *. 2.0)

let test_marks_per_frame () =
  let hand = Handcoded.run ~config ~frames:4 (Archi.ring config.Tracking.Funcs.nproc) in
  (* Two vehicles, three marks each, once tracking locks on. Frame 0 is the
     reinitialisation frame: its full-image tiling can cut a mark across a
     tile boundary and detect both halves, so it is excluded. *)
  List.iteri
    (fun i n -> if i > 0 then Alcotest.(check int) "6 marks" 6 n)
    hand.Handcoded.marks_per_frame

let test_pacing () =
  let hand =
    Handcoded.run ~input_period:0.1 ~config ~frames:3
      (Archi.ring config.Tracking.Funcs.nproc)
  in
  List.iter
    (fun l -> Alcotest.(check bool) "latency positive, below period" true (l > 0.0 && l < 0.1))
    hand.Handcoded.latencies

let () =
  Alcotest.run "handcoded"
    [
      ( "baseline",
        [
          Alcotest.test_case "same outputs" `Quick test_same_outputs;
          Alcotest.test_case "performance comparable" `Quick test_performance_comparable;
          Alcotest.test_case "marks per frame" `Quick test_marks_per_frame;
          Alcotest.test_case "pacing" `Quick test_pacing;
        ] );
    ]
