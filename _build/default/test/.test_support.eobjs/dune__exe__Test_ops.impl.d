test/test_ops.ml: Alcotest Array QCheck QCheck_alcotest Support Vision
