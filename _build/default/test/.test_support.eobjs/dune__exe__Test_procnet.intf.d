test/test_procnet.mli:
