test/test_support.ml: Alcotest Array Fun List Option QCheck QCheck_alcotest Support
