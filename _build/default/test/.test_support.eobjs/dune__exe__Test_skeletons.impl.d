test/test_skeletons.ml: Alcotest Array List QCheck QCheck_alcotest Skel String
