test/test_syndex.ml: Alcotest Archi Array Hashtbl List Printf Procnet QCheck QCheck_alcotest Result Skel Syndex
