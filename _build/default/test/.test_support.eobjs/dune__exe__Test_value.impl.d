test/test_value.ml: Alcotest List Printf QCheck QCheck_alcotest Skel Vision
