test/test_scene.ml: Alcotest List QCheck QCheck_alcotest Vision
