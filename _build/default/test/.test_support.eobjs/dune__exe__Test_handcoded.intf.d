test/test_handcoded.mli:
