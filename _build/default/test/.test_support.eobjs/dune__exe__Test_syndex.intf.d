test/test_syndex.mli:
