test/test_image.ml: Alcotest Filename Fun List Printf QCheck QCheck_alcotest Result Support Sys Vision
