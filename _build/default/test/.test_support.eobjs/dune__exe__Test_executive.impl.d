test/test_executive.ml: Alcotest Archi Array Astring Executive Fun List Machine Procnet QCheck QCheck_alcotest Skel Syndex
