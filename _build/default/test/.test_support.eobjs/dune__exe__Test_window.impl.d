test/test_window.ml: Alcotest Array Fun List Printf QCheck QCheck_alcotest Vision
