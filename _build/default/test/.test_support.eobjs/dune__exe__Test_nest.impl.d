test/test_nest.ml: Alcotest Archi Executive List Printf Procnet QCheck QCheck_alcotest Skel Syndex
