test/test_archi.ml: Alcotest Archi Array Astring List Printf QCheck QCheck_alcotest
