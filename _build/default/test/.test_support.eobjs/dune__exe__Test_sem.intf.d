test/test_sem.mli:
