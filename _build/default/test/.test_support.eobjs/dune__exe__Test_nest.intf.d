test/test_nest.mli:
