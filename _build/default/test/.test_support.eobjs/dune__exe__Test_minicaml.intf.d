test/test_minicaml.mli:
