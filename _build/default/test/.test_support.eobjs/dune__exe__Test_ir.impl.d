test/test_ir.ml: Alcotest Astring Format List Result Skel
