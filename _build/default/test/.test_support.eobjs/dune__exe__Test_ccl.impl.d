test/test_ccl.ml: Alcotest Array List Printf QCheck QCheck_alcotest Support Vision
