test/test_tracking.mli:
