test/test_apps.ml: Alcotest Apps Archi Array Executive List Printf Procnet QCheck QCheck_alcotest Skel Skipper_lib Syndex Vision
