test/test_procnet.ml: Alcotest Array Astring List Printf Procnet QCheck QCheck_alcotest Result Skel
