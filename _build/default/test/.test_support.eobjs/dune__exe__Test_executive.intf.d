test/test_executive.mli:
