test/test_tracking.ml: Alcotest Archi Executive List Option Printf Procnet QCheck QCheck_alcotest Skel Skipper_lib Syndex Tracking Vision
