test/test_archi.mli:
