test/test_transform.ml: Alcotest Archi Executive Format List Printf Procnet QCheck QCheck_alcotest Skel Syndex
