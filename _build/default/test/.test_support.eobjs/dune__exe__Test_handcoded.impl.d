test/test_handcoded.ml: Alcotest Archi Executive Handcoded List Procnet Skel Syndex Tracking Vision
