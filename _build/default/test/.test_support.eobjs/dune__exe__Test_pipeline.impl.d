test/test_pipeline.ml: Alcotest Archi Astring Executive Format List Skel Skipper_lib Syndex Tracking Vision
