test/test_machine.ml: Alcotest Archi Array Astring Float List Machine Printf QCheck QCheck_alcotest Skel String
