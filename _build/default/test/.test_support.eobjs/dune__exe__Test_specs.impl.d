test/test_specs.ml: Alcotest Apps Archi Array Filename In_channel List Printf Skel Skipper_lib Syndex Sys Tracking Vision
