test/test_minicaml.ml: Alcotest Apps Astring Filename Format Fun In_channel List Minicaml Option Out_channel QCheck QCheck_alcotest Skel Sys Tracking
