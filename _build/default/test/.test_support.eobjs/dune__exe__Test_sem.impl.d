test/test_sem.ml: Alcotest Fun List QCheck QCheck_alcotest Skel
