(* Tests for connected-component labelling: the union-find implementation
   against the flood-fill oracle, region statistics, and the scm-style band
   merge. *)

module I = Vision.Image
module C = Vision.Ccl

let random_binaryish seed density w h =
  let rng = Support.Prng.create seed in
  let img = I.create w h in
  I.iter
    (fun x y _ ->
      if Support.Prng.int rng 100 < density then I.set img x y 255 else I.set img x y 0)
    img;
  img

let test_empty_image () =
  let lab = C.label ~threshold:128 (I.create 8 8) in
  Alcotest.(check int) "no components" 0 lab.C.ncomponents;
  Alcotest.(check (list int)) "no regions" []
    (List.map (fun r -> r.C.label) (C.regions lab))

let test_full_image () =
  let lab = C.label ~threshold:128 (I.create ~init:255 8 8) in
  Alcotest.(check int) "one component" 1 lab.C.ncomponents;
  match C.regions lab with
  | [ r ] ->
      Alcotest.(check int) "area" 64 r.C.area;
      Alcotest.(check (float 0.001)) "cx" 3.5 r.C.cx;
      Alcotest.(check int) "bbox" 7 r.C.max_x
  | _ -> Alcotest.fail "expected one region"

let test_two_blobs () =
  let img = I.create 10 10 in
  I.set img 1 1 255;
  I.set img 2 1 255;
  I.set img 8 8 255;
  let lab = C.label ~threshold:128 img in
  Alcotest.(check int) "two components" 2 lab.C.ncomponents

let test_diagonal_not_connected () =
  (* 4-connectivity: diagonal pixels form separate components. *)
  let img = I.create 4 4 in
  I.set img 1 1 255;
  I.set img 2 2 255;
  let lab = C.label ~threshold:128 img in
  Alcotest.(check int) "diagonals separate" 2 lab.C.ncomponents

let test_u_shape_merges () =
  (* A U shape forces a label equivalence to be resolved in pass two. *)
  let img = I.create 5 4 in
  List.iter
    (fun (x, y) -> I.set img x y 255)
    [ (0, 0); (0, 1); (0, 2); (4, 0); (4, 1); (4, 2); (0, 3); (1, 3); (2, 3); (3, 3); (4, 3) ];
  let lab = C.label ~threshold:128 img in
  Alcotest.(check int) "U is one component" 1 lab.C.ncomponents

let test_labels_dense () =
  let img = random_binaryish 5 40 30 30 in
  let lab = C.label ~threshold:128 img in
  let seen = Array.make (lab.C.ncomponents + 1) false in
  Array.iter (fun l -> if l > 0 then seen.(l) <- true) lab.C.labels;
  for l = 1 to lab.C.ncomponents do
    if not seen.(l) then Alcotest.failf "label %d unused" l
  done

let test_regions_area_sums () =
  let img = random_binaryish 6 35 25 25 in
  let lab = C.label ~threshold:128 img in
  let total = List.fold_left (fun acc r -> acc + r.C.area) 0 (C.regions lab) in
  Alcotest.(check int) "areas sum to foreground" (Vision.Ops.count_above 128 img) total

let test_equivalent_detects_renaming () =
  let img = random_binaryish 7 30 20 20 in
  let a = C.label ~threshold:128 img in
  let b = C.label_flood ~threshold:128 img in
  Alcotest.(check bool) "union-find ~ flood" true (C.equivalent a b);
  (* A corrupted labelling is not equivalent. *)
  if Array.length b.C.labels > 0 && b.C.ncomponents > 0 then begin
    let c = { b with C.labels = Array.copy b.C.labels } in
    (match Array.find_index (fun l -> l > 0) c.C.labels with
    | Some i -> c.C.labels.(i) <- 0
    | None -> ());
    Alcotest.(check bool) "corruption detected" false (C.equivalent a c)
  end

let test_merge_bands_trivial () =
  let img = random_binaryish 8 30 16 16 in
  let whole = C.label ~threshold:128 img in
  let single = C.merge_bands ~width:16 [ (whole, 0) ] in
  Alcotest.(check bool) "single band is identity" true (C.equivalent whole single)

let test_merge_bands_rejects_gaps () =
  let img = I.create 4 4 in
  let lab = C.label ~threshold:128 img in
  Alcotest.check_raises "non-contiguous"
    (Invalid_argument "Ccl.merge_bands: bands not contiguous") (fun () ->
      ignore (C.merge_bands ~width:4 [ (lab, 1) ]))

let split_label_merge ~threshold img n =
  let bands = I.row_bands img n in
  let parts =
    List.map (fun (y0, _ as b) -> (C.label ~threshold (I.extract_band img b), y0)) bands
  in
  C.merge_bands ~width:(I.width img) parts

let test_banded_equals_whole () =
  let img = random_binaryish 9 45 40 32 in
  let whole = C.label ~threshold:128 img in
  List.iter
    (fun n ->
      let merged = split_label_merge ~threshold:128 img n in
      Alcotest.(check bool)
        (Printf.sprintf "%d bands equivalent" n)
        true (C.equivalent whole merged))
    [ 2; 3; 4; 8 ]

let arbitrary_case =
  QCheck.make
    QCheck.Gen.(
      map3
        (fun seed density (w, h) -> (seed, density, w, h))
        (int_bound 100_000) (int_range 5 70)
        (pair (int_range 2 40) (int_range 2 40)))
    ~print:(fun (s, d, w, h) -> Printf.sprintf "seed=%d density=%d %dx%d" s d w h)

let prop_union_find_matches_flood =
  QCheck.Test.make ~name:"two-pass labelling matches flood fill" ~count:120
    arbitrary_case (fun (seed, density, w, h) ->
      let img = random_binaryish seed density w h in
      C.equivalent (C.label ~threshold:128 img) (C.label_flood ~threshold:128 img))

let prop_banded_matches_whole =
  QCheck.Test.make ~name:"banded merge matches whole-image labelling" ~count:120
    (QCheck.pair arbitrary_case (QCheck.int_range 1 8))
    (fun ((seed, density, w, h), n) ->
      QCheck.assume (n <= h);
      let img = random_binaryish seed density w h in
      C.equivalent (C.label ~threshold:128 img) (split_label_merge ~threshold:128 img n))

let prop_detect_regions_count =
  QCheck.Test.make ~name:"regions count matches ncomponents" ~count:80 arbitrary_case
    (fun (seed, density, w, h) ->
      let img = random_binaryish seed density w h in
      let lab = C.label ~threshold:128 img in
      List.length (C.regions lab) = lab.C.ncomponents)

let () =
  Alcotest.run "ccl"
    [
      ( "labelling",
        [
          Alcotest.test_case "empty image" `Quick test_empty_image;
          Alcotest.test_case "full image" `Quick test_full_image;
          Alcotest.test_case "two blobs" `Quick test_two_blobs;
          Alcotest.test_case "diagonal not connected" `Quick test_diagonal_not_connected;
          Alcotest.test_case "U shape merges" `Quick test_u_shape_merges;
          Alcotest.test_case "labels dense" `Quick test_labels_dense;
          Alcotest.test_case "region areas sum" `Quick test_regions_area_sums;
          Alcotest.test_case "equivalence checker" `Quick test_equivalent_detects_renaming;
        ] );
      ( "band merge",
        [
          Alcotest.test_case "single band identity" `Quick test_merge_bands_trivial;
          Alcotest.test_case "rejects gaps" `Quick test_merge_bands_rejects_gaps;
          Alcotest.test_case "banded equals whole" `Quick test_banded_equals_whole;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_union_find_matches_flood;
          QCheck_alcotest.to_alcotest prop_banded_matches_whole;
          QCheck_alcotest.to_alcotest prop_detect_regions_count;
        ] );
    ]
