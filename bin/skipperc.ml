(* skipperc: command-line driver for the SKiPPER environment.

   The paper's toolchain is a compiler: it takes the ML specification plus
   the application's sequential C functions and produces either a sequential
   emulation or a distributed executive. Sequential functions here come from
   built-in application function tables selected with --app (the container
   has no C compiler, and the functions are OCaml against the vision
   substrate). Compilation goes through the staged pass manager
   (Skipper_lib.Passes); --timings prints the per-stage report and
   --dump-stage prints one stage's artifact. *)

let app_table = function
  | "tracking" -> Tracking.Funcs.table Tracking.Funcs.default_config
  | "ccl" ->
      let t = Skel.Funtable.create () in
      Apps.Ccl_scm.register t;
      t
  | "road" ->
      let t = Skel.Funtable.create () in
      Apps.Road.register ~width:512 ~height:512 t;
      Skel.Funtable.register t "zero_lane" ~arity:0 ~cost:(fun _ -> 1.0) (fun _ ->
          Apps.Road.lane_to_value
            { Apps.Road.offset = 0.0; slope = 0.0; confidence = 0.0 });
      t
  | "quadtree" ->
      let t = Skel.Funtable.create () in
      Apps.Quadtree.register t;
      t
  | "stateful" ->
      let t = Skel.Funtable.create () in
      Apps.Stateful.register t;
      t
  | "none" -> Skel.Funtable.create ()
  | other -> failwith (Printf.sprintf "unknown application %S" other)

let default_input app =
  match app with
  | "ccl" -> Some (Skel.Value.Image (Apps.Ccl_scm.blobs_image 512 512))
  | "quadtree" -> Some (Skel.Value.Image (Apps.Ccl_scm.blobs_image ~nblobs:12 256 256))
  | "stateful" -> Some (Apps.Stateful.input_value ())
  | _ -> None

let topology name n =
  match name with
  | "ring" -> Archi.ring n
  | "chain" -> Archi.chain n
  | "star" -> Archi.star n
  | "full" -> Archi.fully_connected n
  | other -> failwith (Printf.sprintf "unknown topology %S" other)

(* Strategy names resolve against the mapper registry — the same single
   source of truth the --strategy/--map-strategy help text lists. *)
let strategy_of name =
  match Syndex.Mapper.find name with
  | Some m -> m.Syndex.Mapper.name
  | None ->
      failwith
        (Printf.sprintf "unknown mapping strategy %S (valid strategies: %s)"
           name
           (String.concat ", " (Syndex.Mapper.names ())))

(* Fault-plan flag parsing. Times on the command line are milliseconds;
   the simulator runs in seconds. *)

let parse_proc_at flag spec =
  let bad () =
    failwith (Printf.sprintf "--%s: cannot parse %S (expected PROC@MS)" flag spec)
  in
  match String.split_on_char '@' spec with
  | [ p; t ] -> (
      try (int_of_string (String.trim p), float_of_string (String.trim t) /. 1e3)
      with _ -> bad ())
  | _ -> bad ()

let parse_link flag = function
  | "*" -> None
  | s -> (
      match String.split_on_char '-' s with
      | [ a; b ] -> (
          try Some (int_of_string a, int_of_string b)
          with _ ->
            failwith
              (Printf.sprintf "--%s: bad link %S (expected SRC-DST or *)" flag s))
      | _ ->
          failwith
            (Printf.sprintf "--%s: bad link %S (expected SRC-DST or *)" flag s))

let parse_filter flag s =
  let bad () =
    failwith
      (Printf.sprintf
         "--%s: bad filter %S (expected all, nth=K, every=K or p=P,seed=S)" flag
         s)
  in
  try
    match String.split_on_char '=' s with
    | [ "all" ] -> Machine.Sim.Always
    | [ "nth"; k ] -> Machine.Sim.Nth (int_of_string k)
    | [ "every"; k ] -> Machine.Sim.Every (int_of_string k)
    | [ "p"; spec ] -> (
        match String.split_on_char ',' spec with
        | [ p ] -> Machine.Sim.Prob (float_of_string p, 0)
        | [ p; seed ] ->
            let seed =
              match String.split_on_char '=' seed with
              | [ "seed"; s ] | [ s ] -> int_of_string s
              | _ -> raise Exit
            in
            Machine.Sim.Prob (float_of_string p, seed)
        | _ -> raise Exit)
    | _ -> raise Exit
  with _ -> bad ()

(* --drop-link / --dup-link take LINK[:FILTER]; --delay-link takes
   LINK:MS[:FILTER]. *)
let parse_link_fault flag ~delay spec =
  let bad () =
    let shape = if delay then "LINK:MS[:FILTER]" else "LINK[:FILTER]" in
    failwith (Printf.sprintf "--%s: cannot parse %S (expected %s)" flag spec shape)
  in
  let mk ?schedule link action =
    Machine.Sim.link_fault ?link ?schedule action
  in
  match (delay, String.split_on_char ':' spec) with
  | false, [ l ] -> mk (parse_link flag l) Machine.Sim.Drop
  | false, [ l; f ] ->
      mk ~schedule:(parse_filter flag f) (parse_link flag l) Machine.Sim.Drop
  | true, [ l; ms ] -> (
      try mk (parse_link flag l) (Machine.Sim.Delay (float_of_string ms /. 1e3))
      with Failure _ -> bad ())
  | true, [ l; ms; f ] -> (
      try
        mk ~schedule:(parse_filter flag f) (parse_link flag l)
          (Machine.Sim.Delay (float_of_string ms /. 1e3))
      with Failure _ -> bad ())
  | _ -> bad ()

let dup_of_drop lf = { lf with Machine.Sim.action = Machine.Sim.Duplicate }

let fault_plan ~halts ~restores ~drops ~delays ~dups ~df_timeout =
  let faults = List.map (parse_proc_at "halt") halts in
  let restores = List.map (parse_proc_at "restore") restores in
  let link_faults =
    List.map (parse_link_fault "drop-link" ~delay:false) drops
    @ List.map (parse_link_fault "delay-link" ~delay:true) delays
    @ List.map
        (fun s -> dup_of_drop (parse_link_fault "dup-link" ~delay:false s))
        dups
  in
  let recovery = Option.map (fun ms -> Executive.recovery (ms /. 1e3)) df_timeout in
  (faults, restores, link_faults, recovery)

let outcome_lines (r : Executive.result) =
  let b = Buffer.create 64 in
  (match r.Executive.outcome with
  | Executive.Completed -> ()
  | Executive.Stalled { collected; expected } ->
      Buffer.add_string b
        (Printf.sprintf "outcome: STALLED after %d of %d outputs\n" collected
           expected));
  let tally = Machine.Sim.fault_tally r.Executive.sim in
  if
    tally.Machine.Sim.dropped + tally.Machine.Sim.delayed
    + tally.Machine.Sim.duplicated + r.Executive.reissues
    + r.Executive.retired_workers + r.Executive.deadline_misses
    > 0
  then
    Buffer.add_string b
      (Printf.sprintf
         "faults: %d dropped, %d delayed, %d duplicated messages; %d reissues, \
          %d retired workers, %d deadline misses\n"
         tally.Machine.Sim.dropped tally.Machine.Sim.delayed
         tally.Machine.Sim.duplicated r.Executive.reissues
         r.Executive.retired_workers r.Executive.deadline_misses);
  if r.Executive.checkpoints > 0 || r.Executive.replayed_frames > 0 then
    Buffer.add_string b
      (Printf.sprintf "checkpoints: %d taken, %d frames replayed\n"
         r.Executive.checkpoints r.Executive.replayed_frames);
  Buffer.contents b

let print_outcome r = print_string (outcome_lines r)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* Render the run's telemetry as (path, content, log line) triples. The
   Chrome trace carries the whole toolchain (compile-stage spans + the
   simulated run); the SVG Gantt shows the run alone — compile passes live
   on a microsecond scale that would flatten the millisecond-scale
   simulation lanes into invisibility. With [schedule]/[report] the Gantt
   gains the predicted ghost bars and the measured critical path. Pure
   (no writes), so farmed sweep jobs can render and let the main domain
   write. *)
let render_traces ?compiled ?schedule ?report ?slo ~trace_out ~gantt_svg
    (r : Executive.result) =
  let chrome path =
    let tl =
      match compiled with
      | Some c -> Skipper_lib.Pipeline.timeline ~result:r ?slo c
      | None -> Executive.timeline ?slo r
    in
    ( path,
      Skipper_trace.Chrome.to_json tl,
      Printf.sprintf "skipperc: wrote Chrome trace (%d events) to %s"
        (Skipper_trace.Event.length tl)
        path )
  in
  let svg path =
    let predicted =
      Option.map Skipper_trace.Conformance.predicted_overlay schedule
    in
    let critical =
      Option.map Skipper_trace.Conformance.critical_overlay report
    in
    let bands = Option.map Skipper_trace.Series.Slo.bands slo in
    match
      Skipper_trace.Svg.gantt ?predicted ?critical ?bands
        (Executive.timeline r)
    with
    | Ok svg ->
        (path, svg, Printf.sprintf "skipperc: wrote timeline SVG to %s" path)
    | Error msg -> failwith msg
  in
  Option.to_list (Option.map chrome trace_out)
  @ Option.to_list (Option.map svg gantt_svg)

let export_traces ?compiled ?schedule ?report ?slo ~trace_out ~gantt_svg
    (r : Executive.result) =
  if trace_out <> None || gantt_svg <> None then begin
    if Machine.Sim.trace_truncated r.Executive.sim then
      Printf.eprintf
        "skipperc: warning: trace truncated at %d events; later message \
         lifecycles are missing from the export\n"
        (Machine.Sim.trace_limit r.Executive.sim);
    List.iter
      (fun (path, content, log) ->
        write_file path content;
        Printf.eprintf "%s\n" log)
      (render_traces ?compiled ?schedule ?report ?slo ~trace_out ~gantt_svg r)
  end

(* Windowed-series telemetry: build the series from the run, evaluate the
   SLO specs against it, and render the requested export files (format by
   extension). Pure, so farmed sweep jobs render and the main domain prints
   and writes. *)
let series_files ~series_out ~slo_specs ~series_window (r : Executive.result) =
  if series_out = [] && slo_specs = [] then (None, [])
  else begin
    let width = Option.map (fun ms -> ms /. 1e3) series_window in
    let series =
      match Executive.series ?width r with
      | Ok s -> s
      | Error msg -> failwith msg
    in
    let slo =
      if slo_specs = [] then None
      else Some (Skipper_trace.Series.Slo.evaluate slo_specs series)
    in
    let render path =
      let content =
        match Filename.extension path with
        | ".csv" -> Skipper_trace.Series.to_csv series
        | ".prom" | ".txt" -> Skipper_trace.Series.to_prometheus ?slo series
        | _ -> Skipper_trace.Series.to_json ?slo series
      in
      ( path,
        content,
        Printf.sprintf "skipperc: wrote series (%d windows) to %s"
          (Array.length series.Skipper_trace.Series.windows)
          path )
    in
    (slo, List.map render series_out)
  end

(* "%{procs}" templating for per-variant artifact paths in a sweep. Every
   occurrence expands, so "out/%{procs}/trace-%{procs}.json" works. *)
let subst_procs ~procs path =
  Support.Template.subst ~key:"procs" ~value:(string_of_int procs) path

let has_procs_template path = Support.Template.mem ~key:"procs" path

(* --cache-dir: a persistent content-addressed store for front-end compile
   artifacts, stamped with the artifact format so entries from an
   incompatible build read as misses. *)
let open_cache_store dir =
  Support.Store.open_store ~dir ~stamp:Skipper_lib.Passes.artifact_format ()

let make_cache = function
  | None -> None
  | Some dir ->
      Some (Skipper_lib.Passes.create_cache ~store:(open_cache_store dir) ())

let cache_summary cache =
  let hits, misses = Skipper_lib.Passes.cache_stats cache in
  Printf.sprintf "skipperc: cache: %d hits (%d from store), %d misses" hits
    (Skipper_lib.Passes.store_hits cache)
    misses

let compile ~app ~frames ?(optimize = false) ?df_state ?cache path =
  let table = app_table app in
  Skipper_lib.Pipeline.compile_source ~frames ~optimize ?df_state ?cache ~table
    (read_file path)

let df_state_of = function
  | None -> None
  | Some s -> (
      match Skel.Ir.state_mode_of_string s with
      | Some m -> Some m
      | None ->
          failwith
            (Printf.sprintf "--df-state: unknown mode %S (valid modes: %s)" s
               (String.concat ", " Skel.Ir.state_mode_names)))

let print_timings c = Format.printf "%a" Skipper_lib.Pipeline.pp_timings c

let dump_stage ?arch ?strategy ?input c stage =
  match Skipper_lib.Pipeline.dump_stage ?arch ?strategy ?input c stage with
  | Ok text -> print_string text
  | Error msg -> failwith msg

let wrap f =
  try f (); 0 with
  | Skipper_lib.Pipeline.Compile_error msg | Failure msg ->
      Printf.eprintf "skipperc: %s\n" msg;
      1
  | Executive.Executive_error msg ->
      Printf.eprintf "skipperc: executive: %s\n" msg;
      1

(* ------------------------------------------------------------------ *)

open Cmdliner

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let app_arg =
  Arg.(
    value
    & opt string "none"
    & info [ "app" ] ~docv:"APP"
        ~doc:"Application function table: tracking, ccl, road, quadtree, \
              stateful or none.")

let frames_arg =
  Arg.(value & opt int 1 & info [ "frames" ] ~docv:"N" ~doc:"Stream iterations.")

let procs_arg =
  Arg.(value & opt int 8 & info [ "procs"; "p" ] ~docv:"P" ~doc:"Processor count.")

(* [run] accepts a comma-separated sweep of processor counts; the other
   commands keep the single-count flag above. *)
let procs_list_arg =
  Arg.(
    value
    & opt (list int) [ 8 ]
    & info [ "procs"; "p" ] ~docv:"P[,P...]"
        ~doc:"Processor count, or a comma-separated list to run one variant \
              per count (see --jobs).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Farm the variants of a multi-count --procs sweep over N \
              domains. Each variant compiles and simulates independently and \
              output is printed in sweep order whatever the completion \
              order, so stdout is identical at any N.")

let topo_arg =
  Arg.(
    value
    & opt string "ring"
    & info [ "topology"; "t" ] ~docv:"TOPO" ~doc:"ring, chain, star or full.")

let strategy_arg =
  Arg.(
    value
    & opt string "canonical"
    & info
        [ "strategy"; "s"; "map-strategy" ]
        ~docv:"S"
        ~doc:
          (Printf.sprintf "Mapping strategy: %s."
             (String.concat ", " (Syndex.Mapper.names ()))))

let frontier_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "frontier-out" ] ~docv:"PATH"
        ~doc:
          "Write the selected strategy's latency/throughput trade-off \
           frontier as deterministic JSON (the full Pareto frontier for \
           bicriteria, a single point for single-schedule strategies). In a \
           multi-count --procs sweep the path must carry a %{procs} \
           template.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Persist front-end compile artifacts in a content-addressed \
              store under DIR, shared across skipperc invocations (and with \
              a serve daemon pointed at the same DIR). A second compile of \
              the same source reports every front-end pass as cached. A \
              cache summary line is printed to stderr after compilation.")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "optimize"; "O" ]
        ~doc:"Apply the inter-skeleton transformational rules before expansion.")

let fps_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "fps" ] ~docv:"HZ" ~doc:"Pace the input source at HZ frames per second.")

let timings_arg =
  Arg.(
    value & flag
    & info [ "timings" ]
        ~doc:"Print the per-stage pass-manager report (wall time, artifact \
              size, cache status) after the command.")

let dump_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-stage" ] ~docv:"STAGE"
        ~doc:"Print the named stage's artifact instead of the normal output \
              (parse, typecheck, extract, transform, expand, cost, map, \
              emit, simulate).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE.json"
        ~doc:"Write a Chrome trace-event JSON of the run (compile stages + \
              full message lifecycle) to FILE.json; load it in Perfetto or \
              chrome://tracing. In a multi-count --procs sweep the path must \
              contain %{procs}, substituted per variant.")

let gantt_svg_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "gantt-svg" ] ~docv:"FILE.svg"
        ~doc:"Write a standalone SVG timeline of the simulated run (one lane \
              per processor and link, message arrows between lanes) to \
              FILE.svg. Includes the predicted schedule as ghost bars, and \
              with --conformance the measured critical path highlighted. In \
              a multi-count --procs sweep the path must contain %{procs}, \
              substituted per variant.")

let series_out_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "series-out" ] ~docv:"FILE"
        ~doc:"Write the run's windowed time-series telemetry to FILE \
              (repeatable; the format follows the extension: .json carries \
              the full series plus any SLO report, .csv one row per window, \
              .prom the Prometheus text exposition). Forces tracing on. In \
              a multi-count --procs sweep each path must contain %{procs}, \
              substituted per variant.")

let slo_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "slo" ] ~docv:"SPEC"
        ~doc:"Evaluate a service-level objective over the windowed series \
              (repeatable), e.g. p99_latency<8ms, miss_rate<0.01 or \
              period<3ms. Prints a violations report after the run, marks \
              state transitions on the Chrome trace and shades violated \
              windows on the Gantt SVG. Forces tracing on.")

let series_window_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "series-window" ] ~docv:"MS"
        ~doc:"Width of the telemetry windows in milliseconds (default: the \
              input period when --fps is given, else 5 ms).")

let conformance_arg =
  Arg.(
    value & flag
    & info [ "conformance" ]
        ~doc:"Profile the run against its static schedule: per-op and \
              per-link slack, measured critical path with contribution \
              shares, and the makespan error. Forces tracing on.")

let halt_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "halt" ] ~docv:"P\\@MS"
        ~doc:"Halt processor P at MS milliseconds (repeatable). The \
              processor's processes never run again and messages addressed \
              to them are dropped.")

let restore_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "restore" ] ~docv:"P\\@MS"
        ~doc:"Restore a halted processor P at MS milliseconds (repeatable).")

let drop_link_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "drop-link" ] ~docv:"SPEC"
        ~doc:"Drop messages on a link (repeatable). SPEC is LINK[:FILTER] \
              with LINK either SRC-DST (processor ids) or * for any link, \
              and FILTER one of all (default), nth=K, every=K or \
              p=P,seed=S.")

let delay_link_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "delay-link" ] ~docv:"SPEC"
        ~doc:"Delay messages on a link (repeatable). SPEC is \
              LINK:MS[:FILTER]; see --drop-link for LINK and FILTER.")

let dup_link_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "dup-link" ] ~docv:"SPEC"
        ~doc:"Duplicate messages on a link (repeatable). SPEC is \
              LINK[:FILTER]; see --drop-link.")

let df_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "df-timeout" ] ~docv:"MS"
        ~doc:"Enable the fault-tolerant df farm: a task outstanding longer \
              than MS milliseconds is reissued to an idle worker, and \
              workers that repeatedly time out are retired.")

let df_state_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "df-state" ] ~docv:"MODE"
        ~doc:
          (Printf.sprintf
             "Override the state-access mode of every df farm: %s. The \
              program's init value must already have the shape the target \
              mode expects (see the documentation of the df_* family)."
             (String.concat ", " Skel.Ir.state_mode_names)))

let checkpoint_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Checkpoint the df master's and itermem memory's state every N \
              frames. Combined with --halt/--restore of their processor, the \
              restored master replays from the last checkpoint instead of \
              stalling the stream.")

let check_cmd =
  let run file =
    wrap (fun () ->
        let src = read_file file in
        match Minicaml.Stages.parse src with
        | Error msg -> failwith msg
        | Ok ast -> (
            match Minicaml.Stages.typecheck ast with
            | Error msg -> failwith msg
            | Ok schemes ->
                List.iter
                  (fun (n, s) -> Printf.printf "val %s : %s\n" n s)
                  schemes))
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse and type-check a specification.")
    Term.(const run $ file_arg)

let graph_cmd =
  let run app frames timings dump file =
    wrap (fun () ->
        let c = compile ~app ~frames file in
        (match dump with
        | Some stage -> dump_stage c stage
        | None -> print_string (Skipper_lib.Pipeline.graph_dot c));
        if timings then print_timings c)
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Print the expanded process network in DOT format.")
    Term.(const run $ app_arg $ frames_arg $ timings_arg $ dump_arg $ file_arg)

let map_cmd =
  let run app frames procs topo strat timings dump file =
    wrap (fun () ->
        let c = compile ~app ~frames file in
        let arch = topology topo procs in
        let strategy = strategy_of strat in
        (match dump with
        | Some stage -> dump_stage ~arch ~strategy c stage
        | None ->
            let sched = Skipper_lib.Pipeline.map ~strategy c arch in
            Format.printf "%a@." Syndex.Schedule.pp_summary sched;
            (match Syndex.Schedule.validate sched with
            | Ok () -> print_endline "schedule: valid"
            | Error m -> Printf.printf "schedule: INVALID (%s)\n" m);
            Printf.printf "deadlock-free: %b\n" (Syndex.Schedule.deadlock_free sched);
            print_string (Syndex.Schedule.gantt sched));
        if timings then print_timings c)
  in
  Cmd.v
    (Cmd.info "map" ~doc:"Map the process network onto an architecture (SynDEx step).")
    Term.(
      const run $ app_arg $ frames_arg $ procs_arg $ topo_arg $ strategy_arg
      $ timings_arg $ dump_arg $ file_arg)

let macro_cmd =
  let run app frames procs topo strat timings file =
    wrap (fun () ->
        let c = compile ~app ~frames file in
        let arch = topology topo procs in
        let sched = Skipper_lib.Pipeline.map ~strategy:(strategy_of strat) c arch in
        print_string (Skipper_lib.Pipeline.macro_code c sched);
        if timings then print_timings c)
  in
  Cmd.v
    (Cmd.info "macro" ~doc:"Emit the m4 macro-code of the distributed executive.")
    Term.(
      const run $ app_arg $ frames_arg $ procs_arg $ topo_arg $ strategy_arg
      $ timings_arg $ file_arg)

let emulate_cmd =
  let run app frames timings file =
    wrap (fun () ->
        let c = compile ~app ~frames file in
        let input =
          match (c.Skipper_lib.Pipeline.input, default_input app) with
          | Some v, _ | None, Some v -> v
          | None, None -> failwith "no input available; the source must fix one"
        in
        let v, cycles =
          Skel.Sem.run_cost c.Skipper_lib.Pipeline.table
            c.Skipper_lib.Pipeline.program input
        in
        Printf.printf "%s\n" (Skel.Value.to_string v);
        Printf.printf
          "estimated single-processor time: %.1f ms (%.0f cycles at 20 MHz)\n"
          (cycles *. 5e-8 *. 1e3) cycles;
        if timings then print_timings c)
  in
  Cmd.v
    (Cmd.info "emulate" ~doc:"Run the sequential emulation (workstation path).")
    Term.(const run $ app_arg $ frames_arg $ timings_arg $ file_arg)

(* The frontier artifact: every candidate schedule the strategy considered,
   as (label, latency, period, frames-in-flight, placement) points. *)
let render_frontier ~strategy ~arch c =
  let mapper = Option.get (Syndex.Mapper.find strategy) in
  let cost = Skipper_lib.Pipeline.default_cost c in
  let points =
    Syndex.Mapper.frontier mapper cost arch c.Skipper_lib.Pipeline.graph
  in
  (Syndex.Mapper.frontier_json ~strategy ~arch points ^ "\n", List.length points)

let frontier_file ~strategy ~arch c path =
  let content, npoints = render_frontier ~strategy ~arch c in
  ( path,
    content,
    Printf.sprintf "skipperc: wrote frontier (%d point%s) to %s" npoints
      (if npoints = 1 then "" else "s")
      path )

let run_cmd =
  let run app frames procs_list topo strat fps optimize df_state_str
      checkpoint_every cache_dir timings dump trace_out gantt_svg conformance
      series_out slos series_window frontier_out halts restores drops delays
      dups df_timeout jobs file =
    wrap (fun () ->
        let strategy = strategy_of strat in
        let df_state = df_state_of df_state_str in
        (match checkpoint_every with
        | Some k when k <= 0 -> failwith "--checkpoint-every: N must be positive"
        | _ -> ());
        (* parsed before anything runs, so a bad spec fails fast *)
        let slo_specs =
          List.map
            (fun s ->
              match Skipper_trace.Series.Slo.parse s with
              | Ok spec -> spec
              | Error msg -> failwith msg)
            slos
        in
        let conformance_report ~schedule ~input_period r =
          match
            Machine.Profile.conformance ~schedule
              ~output_times:r.Executive.output_times ?input_period
              r.Executive.sim
          with
          | Ok report -> report
          | Error msg -> failwith msg
        in
        match procs_list with
        | [] -> failwith "--procs: empty list"
        | [ procs ] ->
            let cache = make_cache cache_dir in
            let c = compile ~app ~frames ~optimize ?df_state ?cache file in
            Option.iter
              (fun cache -> Printf.eprintf "%s\n" (cache_summary cache))
              cache;
            let arch = topology topo procs in
            (match dump with
            | Some stage ->
                dump_stage ~arch ~strategy ?input:(default_input app) c stage
            | None ->
                let input_period = Option.map (fun f -> 1.0 /. f) fps in
                let tracing =
                  trace_out <> None || gantt_svg <> None || conformance
                  || series_out <> [] || slo_specs <> []
                in
                let faults, restores, link_faults, recovery =
                  fault_plan ~halts ~restores ~drops ~delays ~dups ~df_timeout
                in
                let schedule, r =
                  Skipper_lib.Pipeline.execute_with_schedule ~trace:tracing
                    ?input_period ~faults ~restores ~link_faults ?recovery
                    ?checkpoint_every ~strategy ?input:(default_input app) c
                    arch
                in
                Printf.printf "result: %s\n" (Skel.Value.to_string r.Executive.value);
                List.iteri
                  (fun i l -> Printf.printf "frame %3d latency %8.2f ms\n" i (l *. 1e3))
                  r.Executive.latencies;
                Printf.printf "messages: %d, bytes: %d\n"
                  r.Executive.stats.Machine.Sim.messages
                  r.Executive.stats.Machine.Sim.bytes;
                print_outcome r;
                let report =
                  if conformance then begin
                    let report = conformance_report ~schedule ~input_period r in
                    print_string (Skipper_trace.Conformance.to_string report);
                    Some report
                  end
                  else None
                in
                let slo, sfiles =
                  series_files ~series_out ~slo_specs ~series_window r
                in
                Option.iter
                  (fun rep ->
                    print_string (Skipper_trace.Series.Slo.to_string rep))
                  slo;
                export_traces ~compiled:c ~schedule ?report ?slo ~trace_out
                  ~gantt_svg r;
                List.iter
                  (fun (path, content, log) ->
                    write_file path content;
                    Printf.eprintf "%s\n" log)
                  sfiles;
                Option.iter
                  (fun path ->
                    let path, content, log =
                      frontier_file ~strategy ~arch c path
                    in
                    write_file path content;
                    Printf.eprintf "%s\n" log)
                  frontier_out);
            if timings then print_timings c
        | _ ->
            (* Multi-variant sweep: one self-contained job per processor
               count, farmed over the domain pool. Each job compiles its own
               pipeline (a compiled artifact carries a mutable report list,
               so variants must not share one) and returns its stdout as a
               string plus rendered artifacts as (path, content) pairs; the
               main domain prints and writes in sweep order, so every output
               is byte-identical at any --jobs level. Artifact paths must
               carry a %{procs} template so variants do not overwrite each
               other; the remaining wall-clock-flavoured flags make no sense
               spread over several variants and are rejected. *)
            if dump <> None || timings then
              failwith "--dump-stage and --timings need a single --procs value";
            List.iter
              (fun (flag, path) ->
                match path with
                | Some p when not (has_procs_template p) ->
                    failwith
                      (Printf.sprintf
                         "%s %s: a multi-count --procs sweep needs a %%{procs} \
                          template in the path (e.g. %s)"
                         flag p
                         (Printf.sprintf "trace-%%{procs}%s"
                            (Filename.extension p)))
                | _ -> ())
              ([ ("--trace-out", trace_out); ("--gantt-svg", gantt_svg);
                 ("--frontier-out", frontier_out) ]
              @ List.map (fun p -> ("--series-out", Some p)) series_out);
            let run_one procs =
              (* per-variant cache over the shared store; no summary line —
                 which variant warms the store first is a race, and sweep
                 output must stay deterministic *)
              let c =
                compile ~app ~frames ~optimize ?df_state
                  ?cache:(make_cache cache_dir) file
              in
              let arch = topology topo procs in
              let input_period = Option.map (fun f -> 1.0 /. f) fps in
              (* parsed per job: a fault plan carries per-schedule state *)
              let faults, restores, link_faults, recovery =
                fault_plan ~halts ~restores ~drops ~delays ~dups ~df_timeout
              in
              let tracing =
                trace_out <> None || gantt_svg <> None || conformance
                || series_out <> [] || slo_specs <> []
              in
              let schedule, r =
                Skipper_lib.Pipeline.execute_with_schedule ~trace:tracing
                  ?input_period ~faults ~restores ~link_faults ?recovery
                  ?checkpoint_every ~strategy ?input:(default_input app) c arch
              in
              let b = Buffer.create 256 in
              Buffer.add_string b (Printf.sprintf "== --procs %d ==\n" procs);
              Buffer.add_string b
                (Printf.sprintf "result: %s\n"
                   (Skel.Value.to_string r.Executive.value));
              List.iteri
                (fun i l ->
                  Buffer.add_string b
                    (Printf.sprintf "frame %3d latency %8.2f ms\n" i (l *. 1e3)))
                r.Executive.latencies;
              Buffer.add_string b
                (Printf.sprintf "messages: %d, bytes: %d\n"
                   r.Executive.stats.Machine.Sim.messages
                   r.Executive.stats.Machine.Sim.bytes);
              Buffer.add_string b (outcome_lines r);
              let report =
                if conformance then begin
                  let report = conformance_report ~schedule ~input_period r in
                  Buffer.add_string b
                    (Skipper_trace.Conformance.to_string report);
                  Some report
                end
                else None
              in
              let slo, sfiles =
                series_files
                  ~series_out:(List.map (subst_procs ~procs) series_out)
                  ~slo_specs ~series_window r
              in
              Option.iter
                (fun rep ->
                  Buffer.add_string b (Skipper_trace.Series.Slo.to_string rep))
                slo;
              let files =
                render_traces ~compiled:c ~schedule ?report ?slo
                  ~trace_out:(Option.map (subst_procs ~procs) trace_out)
                  ~gantt_svg:(Option.map (subst_procs ~procs) gantt_svg)
                  r
                @ sfiles
                @ (match frontier_out with
                  | Some path ->
                      [ frontier_file ~strategy ~arch c
                          (subst_procs ~procs path) ]
                  | None -> [])
              in
              (Buffer.contents b, files)
            in
            List.iter
              (fun (out, files) ->
                print_string out;
                List.iter
                  (fun (path, content, log) ->
                    write_file path content;
                    Printf.eprintf "%s\n" log)
                  files)
              (Support.Domain_pool.run ~jobs
                 (List.map (fun p () -> run_one p) procs_list)))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile, map and execute on the simulated MIMD-DM machine.")
    Term.(
      const run $ app_arg $ frames_arg $ procs_list_arg $ topo_arg $ strategy_arg
      $ fps_arg $ optimize_arg $ df_state_arg $ checkpoint_arg $ cache_dir_arg
      $ timings_arg $ dump_arg
      $ trace_out_arg $ gantt_svg_arg $ conformance_arg $ series_out_arg
      $ slo_arg $ series_window_arg $ frontier_out_arg $ halt_arg $ restore_arg
      $ drop_link_arg $ delay_link_arg $ dup_link_arg $ df_timeout_arg
      $ jobs_arg $ file_arg)

let equiv_cmd =
  let run app frames procs topo timings file =
    wrap (fun () ->
        let c = compile ~app ~frames file in
        let arch = topology topo procs in
        (match
           Skipper_lib.Pipeline.check_equivalence ?input:(default_input app) c arch
         with
        | Ok v ->
            Printf.printf "sequential emulation and distributed executive agree\n";
            Printf.printf "result: %s\n" (Skel.Value.to_string v)
        | Error msg -> failwith msg);
        if timings then print_timings c)
  in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:"Check that emulation and the parallel executive produce equal results.")
    Term.(
      const run $ app_arg $ frames_arg $ procs_arg $ topo_arg $ timings_arg
      $ file_arg)

let repl_cmd =
  let run app =
    wrap (fun () -> Minicaml.Repl.run_channel (app_table app) stdin stdout)
  in
  Cmd.v
    (Cmd.info "repl"
       ~doc:"Interactive toplevel over the specification language (with the \
             chosen application's externals in scope).")
    Term.(const run $ app_arg)

let demo_cmd =
  let run app procs trace_out gantt_svg halts restores drops delays dups
      df_timeout =
    wrap (fun () ->
        let arch = topology "ring" procs in
        let frames = 10 in
        let table, program, input =
          match app with
          | "tracking" ->
              let config = Tracking.Funcs.default_config in
              ( Tracking.Funcs.table config,
                Tracking.Funcs.ir ~frames config,
                Tracking.Funcs.input_value config )
          | "ccl" ->
              let t = app_table "ccl" in
              (t, Apps.Ccl_scm.ir ~nparts:(max 1 (procs - 1)),
               Option.get (default_input "ccl"))
          | "road" ->
              let t = app_table "road" in
              (t, Apps.Road.ir ~frames ~nstrips:(max 1 (procs - 1)) (),
               Apps.Road.input_value ~width:512 ~height:512)
          | "quadtree" ->
              let t = app_table "quadtree" in
              (t, Apps.Quadtree.ir ~nworkers:(max 1 (procs - 1)),
               Option.get (default_input "quadtree"))
          | other -> failwith (Printf.sprintf "no demo for %S" other)
        in
        let compiled = Skipper_lib.Pipeline.compile_ir ~table program in
        let tracing = trace_out <> None || gantt_svg <> None in
        let faults, restores, link_faults, recovery =
          fault_plan ~halts ~restores ~drops ~delays ~dups ~df_timeout
        in
        let r =
          Skipper_lib.Pipeline.execute ~trace:tracing ~input ~input_period:0.04
            ~faults ~restores ~link_faults ?recovery compiled arch
        in
        Printf.printf "application: %s on %s, %d stream iteration(s)\n" app
          (Archi.name arch) program.Skel.Ir.frames;
        List.iteri
          (fun i l -> Printf.printf "frame %3d latency %8.2f ms\n" i (l *. 1e3))
          r.Executive.latencies;
        print_outcome r;
        print_string (Machine.Metrics.to_string (Executive.metrics r));
        export_traces ~compiled ~trace_out ~gantt_svg r)
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:"Run a built-in application end to end (no specification file).")
    Term.(
      const run $ app_arg $ procs_arg $ trace_out_arg $ gantt_svg_arg $ halt_arg
      $ restore_arg $ drop_link_arg $ delay_link_arg $ dup_link_arg
      $ df_timeout_arg)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix domain socket the daemon listens on (serve) or connects \
              to (client).")

let serve_cmd =
  let run socket cache_dir jobs log_file log_level metrics_out =
    wrap (fun () ->
        let level =
          match Support.Log.level_of_string log_level with
          | Ok l -> l
          | Error m -> failwith m
        in
        let with_log k =
          match log_file with
          | None -> k (Support.Log.to_channel ~level stderr)
          | Some path ->
              Out_channel.with_open_gen
                [ Open_wronly; Open_creat; Open_append ] 0o644 path
                (fun oc -> k (Support.Log.to_channel ~level oc))
        in
        with_log (fun log ->
            let metrics = Support.Metrics.create () in
            let cfg =
              {
                Skipper_lib.Serve.table_of = app_table;
                input_of = default_input;
                arch_of = Archi.ring;
                store = Option.map open_cache_store cache_dir;
                jobs;
                log;
                metrics = Some metrics;
                timeline = None;
              }
            in
            let served = Skipper_lib.Serve.serve cfg ~socket () in
            Option.iter
              (fun path ->
                Out_channel.with_open_text path (fun oc ->
                    Out_channel.output_string oc
                      (Support.Metrics.to_prometheus metrics)))
              metrics_out;
            Printf.eprintf "skipperc: serve: %d request(s) served\n" served))
  in
  let log_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-file" ] ~docv:"PATH"
          ~doc:"Append the structured JSONL log to $(docv) (default: \
                stderr).")
  in
  let log_level_arg =
    Arg.(
      value & opt string "info"
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Minimum level to log: debug, info, warn or error.")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"PATH"
          ~doc:"Write the final Prometheus metrics exposition to $(docv) at \
                shutdown.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the compile daemon: a long-lived process on a Unix socket \
             accepting batched compile/run requests (length-prefixed JSON), \
             with warm in-process caches and an optional shared --cache-dir \
             store. Every request is logged (JSONL) and measured into a \
             metrics registry; scrape it live with the metrics op or watch \
             it with skipperc top. Stops on a shutdown request.")
    Term.(
      const run $ socket_arg $ cache_dir_arg $ jobs_arg $ log_file_arg
      $ log_level_arg $ metrics_out_arg)

let client_cmd =
  let run socket op app frames optimize procs strat file =
    wrap (fun () ->
        let source () =
          match file with
          | Some f -> read_file f
          | None -> failwith (Printf.sprintf "op %s needs a FILE argument" op)
        in
        let req =
          match op with
          | "compile" ->
              Skipper_lib.Serve.req_compile ~frames ~optimize ~app (source ())
          | "run" ->
              Skipper_lib.Serve.req_run ~frames ~optimize
                ~strategy:(strategy_of strat) ~procs ~app (source ())
          | "stats" -> Skipper_lib.Serve.req_stats
          | "metrics" -> Skipper_lib.Serve.req_metrics
          | "shutdown" -> Skipper_lib.Serve.req_shutdown
          | other -> failwith (Printf.sprintf "unknown op %S" other)
        in
        match Skipper_lib.Serve.call ~socket [ req ] with
        | Ok [ resp ] ->
            (* the metrics exposition is text, not JSON: print it raw so the
               output pipes straight into a Prometheus scrape file *)
            let exposition =
              if op = "metrics" then
                Option.bind
                  (Support.Json.member "exposition" resp)
                  Support.Json.to_str
              else None
            in
            (match exposition with
            | Some text -> print_string text
            | None -> print_endline (Support.Json.to_string resp))
        | Ok _ -> failwith "unexpected response count"
        | Error msg -> failwith msg)
  in
  let op_arg =
    Arg.(
      value & opt string "run"
      & info [ "op" ] ~docv:"OP"
          ~doc:"Request to send: run (default), compile, stats, metrics or \
                shutdown.")
  in
  let file_opt_arg =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running serve daemon and print the JSON \
             response.")
    Term.(
      const run $ socket_arg $ op_arg $ app_arg $ frames_arg $ optimize_arg
      $ procs_arg $ strategy_arg $ file_opt_arg)

let top_cmd =
  let run socket watch =
    wrap (fun () ->
        let once () =
          match Skipper_lib.Serve.call ~socket [ Skipper_lib.Serve.req_stats ] with
          | Ok [ resp ] -> print_string (Skipper_lib.Serve.render_top resp)
          | Ok _ -> failwith "unexpected response count"
          | Error msg -> failwith msg
        in
        match watch with
        | None -> once ()
        | Some period ->
            while true do
              (* clear screen + home, like watch(1) *)
              print_string "\027[2J\027[H";
              once ();
              Out_channel.flush stdout;
              Unix.sleepf period
            done)
  in
  let watch_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "watch" ] ~docv:"SECONDS"
          ~doc:"Refresh every $(docv) seconds until interrupted (default: \
                print one snapshot and exit).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"One-screen live view of a running serve daemon: uptime, request \
             rate, per-op latency quantiles, cache hit ratio and per-domain \
             busy fractions, from the daemon's stats op.")
    Term.(const run $ socket_arg $ watch_arg)

let main =
  let doc = "SKiPPER: skeleton-based parallel programming environment" in
  Cmd.group (Cmd.info "skipperc" ~doc ~version:"1.0.0")
    [ check_cmd; graph_cmd; map_cmd; macro_cmd; emulate_cmd; run_cmd; equiv_cmd;
      repl_cmd; demo_cmd; serve_cmd; client_cmd; top_cmd ]

let () = exit (Cmd.eval' main)
